(** The durable warehouse engine: checkpoint + write-ahead log.

    {!Rta.save}/{!Rta.load} snapshots alone lose every update since the
    last snapshot on a crash.  This wrapper closes that window: each
    [insert]/[delete] is framed into a {!Wal} record {e before} it is
    applied to the two MVSBTs, and a {e checkpoint} persists the whole
    warehouse through the existing snapshot machinery and then truncates
    the log.  Opening an engine is therefore always a recovery:

    + load the latest checkpoint if one exists (else start empty);
    + replay the log tail on top of it, skipping records the checkpoint
      already covers and stopping cleanly at a torn or corrupt frame;
    + truncate the torn tail so the log is well-formed again.

    Every WAL record carries the warehouse's update sequence number, so a
    crash {e between} writing a checkpoint and truncating the log cannot
    double-apply updates on recovery.

    On-disk layout under a path prefix [p]:
    - [p.wal] — the log;
    - [p.ckpt-<gen>.lkst], [p.ckpt-<gen>.lklt], [p.ckpt-<gen>.meta] — the
      snapshot files of checkpoint generation [<gen>];
    - [p.ckpt] — a small CRC-framed pointer naming the committed
      generation.  The snapshot files and the directory are fsynced
      before the pointer is atomically renamed into place (the single
      commit point), and the WAL is truncated only after that — so a
      crash at any step leaves either the old checkpoint or the new one,
      never a mix, and never discards log records whose effects are not
      yet durable.

    Mutate the warehouse only through this module; going behind its back
    via {!Rta.insert} on {!warehouse} would leave updates unlogged.

    {2 Error handling and health}

    The mutating entry points ({!insert}, {!delete}, {!checkpoint})
    return [(unit, Storage.Storage_error.t) result] instead of leaking
    I/O exceptions; precondition violations (bad key, time going
    backwards) are still [Invalid_argument] — those are caller bugs, not
    disk weather.  All engine I/O runs behind {!Storage.Vfs.with_retry}
    (configurable via [retry]), so transient failures are absorbed with
    bounded exponential backoff before anything surfaces.

    The engine tracks a {!health} state machine:
    - [Healthy] — normal service;
    - [Degraded] — serving, but retries were needed recently or the last
      checkpoint attempt failed;
    - [Read_only] — a log append surfaced an error even after retries
      (canonically [ENOSPC]).  Entered sticky for the life of the
      handle: updates are rejected with a typed [Read_only_store] error
      while queries keep serving from the consistent in-memory state,
      which contains exactly the acknowledged updates.  Reopening the
      path recovers normally — nothing acknowledged is ever lost. *)

type t

type recovery_report = {
  replayed : int;
      (** WAL records replayed during recovery (applied or seq-skipped). *)
  dropped_bytes : int;
      (** Bytes of torn/corrupt WAL tail discarded by this recovery. *)
  checkpoint_gen : int option;
      (** The committed checkpoint generation recovery started from;
          [None] when the warehouse was rebuilt from the WAL alone. *)
}

val pp_recovery_report : Format.formatter -> recovery_report -> unit

type health =
  | Healthy
  | Degraded  (** Retries happening, or the last checkpoint attempt failed. *)
  | Read_only
      (** Persistent write failure: updates rejected, queries serving. *)

val pp_health : Format.formatter -> health -> unit

val open_ :
  ?config:Mvsbt.config ->
  ?pool_capacity:int ->
  ?stats:Storage.Io_stats.t ->
  ?sync_policy:Wal.sync_policy ->
  ?checkpoint_every:int ->
  ?wal_stats:Wal.Stats.t ->
  ?wal_wrap:(Wal.file -> Wal.file) ->
  ?retry:Storage.Retry.policy option ->
  ?telemetry:Telemetry.Tracer.t ->
  ?vfs:Storage.Vfs.t ->
  max_key:int ->
  path:string ->
  unit ->
  t
(** Open (and recover) the warehouse under path prefix [path], creating
    it if nothing is on disk yet.  [sync_policy] defaults to
    [Every_n 32]; [checkpoint_every] (default 0 = manual only) triggers
    an automatic {!checkpoint} once that many updates have accumulated
    since the last one.  [telemetry] (default {!Telemetry.Tracer.noop})
    attaches a tracer to the whole stack: the engine emits
    [durable.recover] / [durable.insert] / [durable.delete] /
    [durable.checkpoint] spans and [durable.health] transition events,
    the warehouse and WAL their own [rta.*] / [mvsbt.*] / [wal.*] spans,
    and the engine's vfs is wrapped with {!Storage.Vfs.with_telemetry}
    so every syscall shows up as a [vfs.*] leaf span.  [wal_wrap] interposes on the log's byte layer —
    the hook {!Wal.Faulty} plugs into for crash testing.  Every file
    operation (log, checkpoint snapshots, pointer, directory fsyncs)
    goes through [vfs] (default {!Storage.Vfs.os}) wrapped in
    {!Storage.Vfs.with_retry} under the [retry] policy (default
    {!Storage.Retry.default}; pass [None] for no retries), charging
    retries to [stats]; passing {!Storage.Vfs.Memory} is what lets the
    crash-state explorer ([lib/faultsim]) journal and replay the
    engine's disk traffic.
    @raise Failure if an existing checkpoint disagrees with [max_key] or
    a snapshot file is malformed.
    @raise Storage.Storage_error.Io if recovery I/O fails even after
    retries (the handle is not created; nothing on disk is damaged
    beyond what already was). *)

val insert :
  t -> key:int -> value:int -> at:int -> (unit, Storage.Storage_error.t) result
(** Log, then apply.  Same contract as {!Rta.insert}; validation happens
    {e before} the record is logged, so a rejected update never pollutes
    the log.  [Error] means the update is {e not} logged and {e not}
    applied — the warehouse is exactly as before the call — and the
    engine has entered [Read_only] (or was already there).  May raise
    {!Wal.Crashed} under crash injection, in which case the update is
    not applied.
    @raise Invalid_argument on precondition violations (caller bugs). *)

val delete : t -> key:int -> at:int -> (unit, Storage.Storage_error.t) result
(** Log, then apply; see {!insert}. *)

val sync_wal : t -> (unit, Storage.Storage_error.t) result
(** Force the WAL to disk now, regardless of the engine's sync policy —
    the commit half of group commit: a batcher opens the engine with
    [Wal.Never], applies a batch of {!insert}/{!delete} calls (each
    logged but not yet fsynced), then calls this once before
    acknowledging any of them.  [Ok] means every update applied so far is
    durable.  No-op ([Ok]) when nothing is unsynced.  On [Error] the
    engine enters [Read_only] — an fsync the device refused means the
    logged tail may or may not survive a crash, and later acknowledgments
    would silently sit on top of it.  Refused with [Read_only_store] when
    already [Read_only]. *)

val checkpoint : t -> (unit, Storage.Storage_error.t) result
(** Snapshot the warehouse and truncate the log.  Durable once this
    returns [Ok]; crash-safe at every intermediate step.  On [Error] the
    previously committed checkpoint and the full WAL are intact — no
    acknowledged update is at risk — and the engine degrades to
    [Degraded] but keeps accepting updates; a failed attempt's
    generation number is never reused.  Refused with [Read_only_store]
    when the engine is [Read_only]. *)

val warehouse : t -> Rta.t
(** The live warehouse, for queries ({!Rta.sum_count} and friends). *)

val sum_count : t -> klo:int -> khi:int -> tlo:int -> thi:int -> int * int
(** Convenience passthrough to {!Rta.sum_count}. *)

val recovery_report : t -> recovery_report
(** What the recovery that opened this handle found and did. *)

val replayed_on_open : t -> int
(** [= (recovery_report t).replayed]. *)

val updates_since_checkpoint : t -> int

val checkpoints : t -> int
(** Checkpoints taken by this handle (manual + automatic). *)

val wal_stats : t -> Wal.Stats.t

val wal_unsynced : t -> int
(** Records appended to the WAL but not yet covered by an fsync — zero
    exactly when everything logged is durable.  A log shipper polls its
    tail only at zero, so it never ships a record a crash could still
    lose (followers must not get ahead of the leader's durable
    watermark). *)

val wal_path : string -> string
(** The WAL file path for an engine opened at [path] ([path ^ ".wal"]) —
    where a replication tailer opens its second read handle. *)

val sync_policy : t -> Wal.sync_policy

val health : t -> health
(** Current health; see the module preamble for the transitions. *)

val on_health_change : t -> (health -> health -> unit) -> unit
(** Register [f] to run on every health {e transition} (not per-op
    re-assertions) as [f previous next], after the new state is
    committed — so [f] observing {!health} sees [next].  Lets a serving
    layer flip write-rejection the instant the engine degrades instead of
    polling.  Hooks run in registration order (newest first), may not
    unregister, and exceptions they raise are swallowed. *)

val last_error : t -> Storage.Storage_error.t option
(** The most recent I/O error the engine absorbed or surfaced; [None]
    after a clean operation returns the engine to [Healthy]. *)

val io_stats : t -> Storage.Io_stats.t
(** The stats sink the engine charges retries and page I/O to (the one
    passed to {!open_}, or a private one). *)

val telemetry : t -> Telemetry.Tracer.t
(** The tracer the engine emits to (the one passed to {!open_}, or
    {!Telemetry.Tracer.noop}). *)

val close : t -> unit
(** Fsync the log (best effort) and release the file; no checkpoint is
    taken.  Never raises a typed I/O error: whatever the log already
    holds is what recovery will see. *)
