module E = Storage.Storage_error

type recovery_report = {
  replayed : int;  (* WAL records replayed (applied or seq-skipped) *)
  dropped_bytes : int;  (* torn/corrupt tail discarded by this recovery *)
  checkpoint_gen : int option;  (* committed generation loaded, if any *)
}

let pp_recovery_report ppf r =
  Format.fprintf ppf "checkpoint=%s replayed=%d dropped_bytes=%d"
    (match r.checkpoint_gen with None -> "none" | Some g -> "gen " ^ string_of_int g)
    r.replayed r.dropped_bytes

type health = Healthy | Degraded | Read_only

let pp_health ppf = function
  | Healthy -> Format.pp_print_string ppf "healthy"
  | Degraded -> Format.pp_print_string ppf "degraded"
  | Read_only -> Format.pp_print_string ppf "read-only"

type t = {
  rta : Rta.t;
  wal : Wal.t;
  vfs : Storage.Vfs.t;
  stats : Storage.Io_stats.t;
  tel : Telemetry.Tracer.t;
  path : string;
  checkpoint_every : int;
  mutable ckpt_gen : int; (* generation named by the committed pointer *)
  mutable ckpt_attempt : int; (* highest generation any attempt ever used *)
  mutable since_ckpt : int;
  mutable n_ckpts : int;
  mutable health : health;
  mutable last_error : E.t option;
  mutable ckpt_failed : bool; (* the most recent checkpoint attempt failed *)
  mutable retries_seen : int; (* Io_stats.retries at the last health update *)
  mutable health_hooks : (health -> health -> unit) list; (* newest first *)
  report : recovery_report;
}

(* --- WAL record payloads ------------------------------------------------------ *)

(* seq i64 | op u8 | at i64 | key i64 | value i64 (inserts only).  [seq] is
   the warehouse's n_updates after applying the record, so recovery can
   tell which records a checkpoint already covers. *)

let op_insert = 1
let op_delete = 2
let record_max_bytes = 8 + 1 + 8 + 8 + 8

let encode_insert ~seq ~key ~value ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_insert;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  Storage.Codec.Writer.i64 w value;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

let encode_delete ~seq ~key ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_delete;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

(* --- Checkpoint files --------------------------------------------------------- *)

(* A checkpoint is three snapshot files under a generation-stamped prefix
   ([p.ckpt-<gen>.lkst/.lklt/.meta]) plus one small CRC-framed pointer
   file [p.ckpt] naming the committed generation.  The snapshot files and
   the directory are fsynced {e before} the pointer is atomically renamed
   into place, so the pointer never names files that could be lost or
   half-written; the rename is the single commit point — there is no
   window in which load could see snapshot files from two different
   checkpoints.  Only after the pointer (and the directory entry for it)
   is durable may the WAL be truncated. *)

let ptr_path path = path ^ ".ckpt"
let ptr_magic = "RTA-CKPT-PTR-1"
let gen_prefix path gen = Printf.sprintf "%s.ckpt-%d" path gen
let snapshot_exts = [ ".lkst"; ".lklt"; ".meta" ]
let wal_path path = path ^ ".wal"

let fsync_dir_of vfs p = vfs.Storage.Vfs.v_sync_dir (Filename.dirname p)

let write_pointer vfs path gen =
  let w = Storage.Codec.Writer.create (String.length ptr_magic + 8 + 4) in
  String.iter (fun ch -> Storage.Codec.Writer.u8 w (Char.code ch)) ptr_magic;
  Storage.Codec.Writer.i64 w gen;
  let len = Storage.Codec.Writer.pos w in
  let buf = Storage.Codec.Writer.contents w in
  (* Unsigned 32-bit CRC: splice raw rather than through Writer.i32. *)
  Bytes.set_int32_le buf len (Int32.of_int (Storage.Codec.crc32 buf ~pos:0 ~len));
  Storage.Vfs.write_file_atomic vfs ~path:(ptr_path path) buf ~len:(len + 4);
  fsync_dir_of vfs path

(* [None] when no checkpoint was ever committed; a present-but-corrupt
   pointer fails loudly rather than silently recovering from an empty
   state (the WAL alone no longer holds the full history). *)
let read_pointer vfs path =
  let file = ptr_path path in
  if not (vfs.Storage.Vfs.v_exists file) then None
  else begin
    let buf = Storage.Vfs.read_file vfs file in
    let size = Bytes.length buf in
    let expect = String.length ptr_magic + 8 + 4 in
    if size <> expect then failwith "Durable: corrupt checkpoint pointer (bad size)";
    let crc = Int32.to_int (Bytes.get_int32_le buf (size - 4)) land 0xFFFFFFFF in
    if Storage.Codec.crc32 buf ~pos:0 ~len:(size - 4) <> crc then
      failwith "Durable: corrupt checkpoint pointer (checksum mismatch)";
    let rd = Storage.Codec.Reader.create buf in
    let magic =
      String.init (String.length ptr_magic) (fun _ -> Char.chr (Storage.Codec.Reader.u8 rd))
    in
    if magic <> ptr_magic then failwith "Durable: corrupt checkpoint pointer (bad magic)";
    Some (Storage.Codec.Reader.i64 rd)
  end

(* Snapshot files of any generation other than the committed one are
   leftovers of a checkpoint that crashed (or errored) before, or was
   superseded after, its pointer swap. *)
let remove_stale_generations vfs path ~keep =
  let dir = Filename.dirname path in
  let base = Filename.basename path ^ ".ckpt-" in
  Array.iter
    (fun name ->
      if String.length name > String.length base
         && String.sub name 0 (String.length base) = base then begin
        let rest = String.sub name (String.length base) (String.length name - String.length base) in
        match String.index_opt rest '.' with
        | Some dot ->
            (match int_of_string_opt (String.sub rest 0 dot) with
            | Some gen when gen <> keep ->
                (try vfs.Storage.Vfs.v_remove (Filename.concat dir name)
                 with Sys_error _ | E.Io _ -> ())
            | _ -> ())
        | None -> ()
      end)
    (try vfs.Storage.Vfs.v_readdir dir with Sys_error _ -> [||]);
  let tmp = ptr_path path ^ ".tmp" in
  if vfs.Storage.Vfs.v_exists tmp then
    try vfs.Storage.Vfs.v_remove tmp with Sys_error _ | E.Io _ -> ()

(* --- Recovery ----------------------------------------------------------------- *)

let apply_record rta rd =
  let seq = Storage.Codec.Reader.i64 rd in
  let op = Storage.Codec.Reader.u8 rd in
  let at = Storage.Codec.Reader.i64 rd in
  let key = Storage.Codec.Reader.i64 rd in
  let applied = Rta.n_updates rta in
  if seq <= applied then () (* already inside the checkpoint *)
  else if seq > applied + 1 then
    failwith
      (Printf.sprintf "Durable: WAL sequence gap (record %d over state %d)" seq applied)
  else
    match op with
    | x when x = op_insert ->
        let value = Storage.Codec.Reader.i64 rd in
        Rta.insert rta ~key ~value ~at
    | x when x = op_delete -> Rta.delete rta ~key ~at
    | x -> failwith (Printf.sprintf "Durable: unknown WAL opcode %d" x)

let open_ ?config ?pool_capacity ?stats ?(sync_policy = Wal.Every_n 32)
    ?(checkpoint_every = 0) ?wal_stats ?(wal_wrap = fun f -> f)
    ?(retry = Some Storage.Retry.default) ?(telemetry = Telemetry.Tracer.noop)
    ?(vfs = Storage.Vfs.os) ~max_key ~path () =
  let stats = match stats with Some s -> s | None -> Storage.Io_stats.create () in
  (* Everything the engine does from here on — recovery reads, log
     appends, checkpoint writes — goes through the retry layer, so
     transient failures ([EINTR], [EIO], short transfers) are absorbed
     with backoff whatever vfs the caller handed in.  The tracer wraps
     outermost: a [vfs.*] span covers every retry of the syscall. *)
  let vfs =
    match retry with
    | None -> vfs
    | Some policy -> Storage.Vfs.with_retry ~stats ~policy vfs
  in
  let vfs = Storage.Vfs.with_telemetry telemetry vfs in
  let retries_at_open = Storage.Io_stats.retries stats in
  let pointer, ckpt_gen, rta, wal, n_replayed, dropped_bytes =
    Telemetry.Tracer.with_span telemetry "durable.recover"
      ~attrs:(fun () -> [ ("path", Telemetry.Tracer.Str path) ])
    @@ fun () ->
    let pointer = read_pointer vfs path in
    let ckpt_gen, rta =
      match pointer with
      | Some gen ->
          let rta =
            Rta.load ?pool_capacity ~stats ~telemetry ~vfs ~path:(gen_prefix path gen) ()
          in
          if Rta.max_key rta <> max_key then
            failwith
              (Printf.sprintf "Durable.open_: checkpoint has max_key %d, asked for %d"
                 (Rta.max_key rta) max_key);
          (gen, rta)
      | None -> (0, Rta.create ?config ?pool_capacity ~stats ~telemetry ~max_key ())
    in
    (* Snapshot files of a checkpoint that crashed before its commit point
       are dead weight; clear them so they cannot be confused with state. *)
    remove_stale_generations vfs path ~keep:ckpt_gen;
    let wal =
      Wal.open_log ~policy:sync_policy ?stats:wal_stats ~telemetry
        ~path:(wal_path path)
        (wal_wrap (vfs.Storage.Vfs.v_open `Log (wal_path path)))
    in
    let st = Wal.stats wal in
    let dropped_before = Wal.Stats.dropped_bytes st in
    let n_replayed = Wal.replay wal (apply_record rta) in
    (pointer, ckpt_gen, rta, wal, n_replayed,
     Wal.Stats.dropped_bytes st - dropped_before)
  in
  let report = { replayed = n_replayed; dropped_bytes; checkpoint_gen = pointer } in
  (* Replayed records are exactly the updates the last checkpoint missed,
     so they count toward the next automatic checkpoint. *)
  { rta; wal; vfs; stats; tel = telemetry; path; checkpoint_every; ckpt_gen;
    ckpt_attempt = ckpt_gen; since_ckpt = n_replayed; n_ckpts = 0; health = Healthy;
    last_error = None; ckpt_failed = false; retries_seen = retries_at_open;
    health_hooks = []; report }

(* --- Health ------------------------------------------------------------------- *)

(* Healthy / Degraded / Read_only.  Read_only is sticky for the life of
   the handle: it is entered when an update's log append surfaces an
   error (the retry budget is already spent by then, so the failure is
   persistent for practical purposes — the canonical case being a full
   disk), after which updates are rejected with [Read_only_store] and
   queries keep serving from the consistent in-memory state.  Degraded
   means "working, but something is off": retries were needed recently,
   or the last checkpoint attempt failed.  A clean operation with no
   outstanding checkpoint failure returns the engine to Healthy. *)

let health_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Read_only -> "read-only"

(* Every actual transition (and only transitions, not the per-op
   re-assertions of the current state) is an event on the trace. *)
let set_health t h =
  if t.health <> h then begin
    let prev = t.health in
    t.health <- h;
    Telemetry.Tracer.event t.tel "durable.health"
      ~attrs:
        [ ("from", Telemetry.Tracer.Str (health_name prev));
          ("to", Telemetry.Tracer.Str (health_name h)) ];
    (* Hooks run after the state is committed, so a callback reading
       [health t] sees the new state.  A raising hook would poison the
       update path it fired from — swallow, the hook is best-effort. *)
    List.iter (fun f -> try f prev h with _ -> ()) t.health_hooks
  end

let on_health_change t f = t.health_hooks <- f :: t.health_hooks

let enter_read_only t e =
  t.last_error <- Some e;
  if t.health <> Read_only then begin
    set_health t Read_only;
    Storage.Io_stats.record_read_only_transition t.stats
  end

let note_op_complete t =
  if t.health <> Read_only then begin
    let r = Storage.Io_stats.retries t.stats in
    if r > t.retries_seen then begin
      t.retries_seen <- r;
      set_health t Degraded
    end
    else if t.ckpt_failed then set_health t Degraded
    else begin
      set_health t Healthy;
      t.last_error <- None
    end
  end

(* --- Checkpointing ------------------------------------------------------------ *)

let checkpoint t =
  match t.health with
  | Read_only ->
      Error
        (E.v ~op:E.Pwrite ~path:t.path ~detail:"checkpoint refused" E.Read_only_store)
  | Healthy | Degraded -> (
      (* Never reuse the generation of a failed attempt: its files may
         exist in any half-written state, and if an earlier attempt got as
         far as the pointer rename, rewriting the files that committed
         pointer names would race the atomicity argument. *)
      let gen = 1 + max t.ckpt_gen t.ckpt_attempt in
      t.ckpt_attempt <- gen;
      Telemetry.Tracer.with_span t.tel "durable.checkpoint"
        ~attrs:(fun () -> [ ("gen", Telemetry.Tracer.Int gen) ])
      @@ fun () ->
      let prefix = gen_prefix t.path gen in
      match
        E.protect (fun () ->
            Rta.save ~vfs:t.vfs t.rta ~path:prefix;
            (* Force the snapshot files (and the new directory entries) to
               the platter before the pointer can name them, and the
               pointer before the WAL — the log records may only be
               discarded once the state they rebuild is durable without
               them. *)
            List.iter (fun ext -> Storage.Vfs.sync_path t.vfs (prefix ^ ext)) snapshot_exts;
            fsync_dir_of t.vfs t.path;
            write_pointer t.vfs t.path gen)
      with
      | Error e ->
          (* The pointer still names the previous generation, which is
             untouched; this attempt's files are stale leftovers swept on
             the next open.  The WAL still holds every update, so the
             engine keeps accepting writes — degraded, not read-only. *)
          t.ckpt_failed <- true;
          t.last_error <- Some e;
          set_health t Degraded;
          Error e
      | Ok () ->
          let old = t.ckpt_gen in
          t.ckpt_gen <- gen;
          t.since_ckpt <- 0;
          t.n_ckpts <- t.n_ckpts + 1;
          t.ckpt_failed <- false;
          (* Pointer durable: every log record is now redundant.  A failed
             truncation costs space, not correctness — replay seq-skips
             covered records — so the checkpoint still counts. *)
          (match Wal.truncate t.wal with
          | Ok () -> ()
          | Error e ->
              t.last_error <- Some e;
              if t.health <> Read_only then set_health t Degraded);
          if old > 0 then
            List.iter
              (fun ext ->
                try t.vfs.Storage.Vfs.v_remove (gen_prefix t.path old ^ ext)
                with Sys_error _ | E.Io _ -> ())
              snapshot_exts;
          note_op_complete t;
          Ok ())

let maybe_auto_checkpoint t =
  if t.checkpoint_every > 0 && t.since_ckpt >= t.checkpoint_every then
    (* The update that tripped the threshold is already logged and
       applied; a failed background checkpoint leaves it fully durable
       via the WAL, so the failure degrades health instead of failing
       the update.  [checkpoint] records error state itself. *)
    match checkpoint t with Ok () -> () | Error _ -> ()

(* --- Updates ------------------------------------------------------------------ *)

(* Validation mirrors Rta's own checks and runs before anything is logged,
   so applying a logged record cannot fail (neither here nor on replay).
   Precondition violations are caller bugs and still raise
   [Invalid_argument]; the [result] channel is reserved for I/O. *)

let reject_if_read_only t =
  match t.health with
  | Read_only ->
      Error
        (E.v ~op:E.Append ~path:(wal_path t.path) ~detail:"update rejected"
           E.Read_only_store)
  | Healthy | Degraded -> Ok ()

let log_then_apply t ~append ~apply =
  match reject_if_read_only t with
  | Error _ as e -> e
  | Ok () -> (
      match append () with
      | Error e ->
          (* Nothing was logged (Wal.append rolls back) and nothing was
             applied: the warehouse is exactly as before the call, and
             every prior acknowledged update is still recoverable. *)
          enter_read_only t e;
          Error e
      | Ok () ->
          apply ();
          t.since_ckpt <- t.since_ckpt + 1;
          maybe_auto_checkpoint t;
          note_op_complete t;
          Ok ())

(* Group commit's second half: the server batcher opens the engine with
   [Wal.Never], appends a whole batch of updates without per-record
   fsyncs, then forces one sync here before acknowledging any of them.
   A failed fsync is treated exactly like a failed append — the device
   refused durability, and quietly acknowledging later writes on top of a
   maybe-lost tail would be fraud — so the engine goes read-only. *)
let sync_wal t =
  match t.health with
  | Read_only ->
      Error (E.v ~op:E.Fsync ~path:(wal_path t.path) ~detail:"sync refused" E.Read_only_store)
  | Healthy | Degraded -> (
      if Wal.unsynced t.wal = 0 then Ok ()
      else
        match Wal.sync t.wal with
        | Ok () ->
            note_op_complete t;
            Ok ()
        | Error e ->
            enter_read_only t e;
            Error e)

let insert t ~key ~value ~at =
  if key < 0 || key >= Rta.max_key t.rta then
    invalid_arg "Durable.insert: key outside key space";
  if Rta.is_alive t.rta ~key then
    invalid_arg (Printf.sprintf "Durable.insert: key %d is already alive (1TNF)" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_insert ~seq:(Rta.n_updates t.rta + 1) ~key ~value ~at in
  Telemetry.Tracer.with_span t.tel "durable.insert"
    ~attrs:(fun () -> [ ("key", Telemetry.Tracer.Int key) ])
  @@ fun () ->
  log_then_apply t
    ~append:(fun () -> Wal.append t.wal ~len buf)
    ~apply:(fun () -> Rta.insert t.rta ~key ~value ~at)

let delete t ~key ~at =
  if not (Rta.is_alive t.rta ~key) then
    invalid_arg (Printf.sprintf "Durable.delete: key %d is not alive" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_delete ~seq:(Rta.n_updates t.rta + 1) ~key ~at in
  Telemetry.Tracer.with_span t.tel "durable.delete"
    ~attrs:(fun () -> [ ("key", Telemetry.Tracer.Int key) ])
  @@ fun () ->
  log_then_apply t
    ~append:(fun () -> Wal.append t.wal ~len buf)
    ~apply:(fun () -> Rta.delete t.rta ~key ~at)

(* --- Accessors ---------------------------------------------------------------- *)

let warehouse t = t.rta
let sum_count t ~klo ~khi ~tlo ~thi = Rta.sum_count t.rta ~klo ~khi ~tlo ~thi
let recovery_report t = t.report
let replayed_on_open t = t.report.replayed
let updates_since_checkpoint t = t.since_ckpt
let checkpoints t = t.n_ckpts
let wal_stats t = Wal.stats t.wal
let wal_unsynced t = Wal.unsynced t.wal
let sync_policy t = Wal.policy t.wal
let health t = t.health
let last_error t = t.last_error
let io_stats t = t.stats
let telemetry t = t.tel

let close t =
  (* Best effort: a failing final fsync must not prevent releasing the
     file — whatever the log already holds is what recovery will see. *)
  (match Wal.sync t.wal with Ok () -> () | Error _ -> ());
  Wal.close t.wal
