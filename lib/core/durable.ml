module E = Storage.Storage_error

type recovery_report = {
  replayed : int;  (* WAL records replayed (applied or seq-skipped) *)
  dropped_bytes : int;  (* torn/corrupt tail discarded by this recovery *)
  checkpoint_gen : int option;  (* committed generation loaded, if any *)
}

let pp_recovery_report ppf r =
  Format.fprintf ppf "checkpoint=%s replayed=%d dropped_bytes=%d"
    (match r.checkpoint_gen with None -> "none" | Some g -> "gen " ^ string_of_int g)
    r.replayed r.dropped_bytes

type health = Healthy | Degraded | Read_only

let pp_health ppf = function
  | Healthy -> Format.pp_print_string ppf "healthy"
  | Degraded -> Format.pp_print_string ppf "degraded"
  | Read_only -> Format.pp_print_string ppf "read-only"

type pressure = Normal | Soft | Hard

let pp_pressure ppf = function
  | Normal -> Format.pp_print_string ppf "normal"
  | Soft -> Format.pp_print_string ppf "soft"
  | Hard -> Format.pp_print_string ppf "hard"

type retention = Keep_all | Keep_last of int

type t = {
  rta : Rta.t;
  wal : Wal.t;
  vfs : Storage.Vfs.t;
  stats : Storage.Io_stats.t;
  tel : Telemetry.Tracer.t;
  path : string;
  store : Storage.Store_kind.t;
  checkpoint_every : int;
  watermarks : (int * int) option; (* (soft, hard) disk-usage bytes *)
  disk_used : unit -> int;
  retention : retention;
  mutable ckpt_gen : int; (* generation named by the committed pointer *)
  mutable ckpt_attempt : int; (* highest generation any attempt ever used *)
  mutable since_ckpt : int;
  mutable n_ckpts : int;
  mutable health : health; (* published: what callers and hooks observe *)
  mutable io_health : health; (* the sticky I/O machine, pressure excluded *)
  mutable pressure : pressure;
  mutable last_error : E.t option;
  mutable ckpt_failed : bool; (* the most recent checkpoint attempt failed *)
  mutable retries_seen : int; (* Io_stats.retries at the last health update *)
  mutable health_hooks : (health -> health -> unit) list; (* newest first *)
  mutable in_vacuum : bool; (* guards auto-vacuum against re-entrance *)
  mutable n_vacuums : int;
  mutable phase_cell : Telemetry.Phases.cell option;
      (* where the in-flight update charges its wal-append/apply time;
         set around each op by the group-commit layer, [None] otherwise *)
  report : recovery_report;
}

(* --- WAL record payloads ------------------------------------------------------ *)

(* seq i64 | op u8 | payload.  [seq] is the warehouse's n_updates after
   applying the record, so recovery can tell which records a checkpoint
   already covers.  Payloads:
   - insert:       at i64 | key i64 | value i64
   - delete:       at i64 | key i64
   - vacuum_begin: horizon i64
   - vacuum_chunk: horizon i64 | n i32 | n x (side u8 | free u8 | pid i64)
   Vacuum records carry the {e explicit} page actions rather than "rescan
   at horizon h": replay is then deterministic whatever order the
   original scan visited the stores in, and a chunk interrupted by a
   crash re-applies exactly the same frees and prunes (each tolerant of
   already-done work). *)

let op_insert = 1
let op_delete = 2
let op_vacuum_begin = 3
let op_vacuum_chunk = 4
let record_max_bytes = 8 + 1 + 8 + 8 + 8

let encode_insert ~seq ~key ~value ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_insert;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  Storage.Codec.Writer.i64 w value;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

let encode_delete ~seq ~key ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_delete;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

let encode_vacuum_begin ~seq ~horizon =
  let w = Storage.Codec.Writer.create (8 + 1 + 8) in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_vacuum_begin;
  Storage.Codec.Writer.i64 w horizon;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

let side_u8 = function Rta.Lkst -> 0 | Rta.Lklt -> 1
let side_of_u8 = function 0 -> Rta.Lkst | 1 -> Rta.Lklt | x -> failwith (Printf.sprintf "Durable: unknown vacuum side %d" x)

let encode_vacuum_chunk ~seq ~horizon actions =
  let n = List.length actions in
  let w = Storage.Codec.Writer.create (8 + 1 + 8 + 4 + (10 * n)) in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_vacuum_chunk;
  Storage.Codec.Writer.i64 w horizon;
  Storage.Codec.Writer.i32 w n;
  List.iter
    (fun a ->
      Storage.Codec.Writer.u8 w (side_u8 a.Rta.va_side);
      Storage.Codec.Writer.u8 w (if a.Rta.va_free then 1 else 0);
      Storage.Codec.Writer.i64 w a.Rta.va_pid)
    actions;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

let decode_vacuum_actions rd =
  let n = Storage.Codec.Reader.i32 rd in
  List.init n (fun _ ->
      let side = side_of_u8 (Storage.Codec.Reader.u8 rd) in
      let free = Storage.Codec.Reader.u8 rd <> 0 in
      let pid = Storage.Codec.Reader.i64 rd in
      { Rta.va_side = side; va_free = free; va_pid = pid })

(* --- Checkpoint files --------------------------------------------------------- *)

(* A checkpoint is three snapshot files under a generation-stamped prefix
   ([p.ckpt-<gen>.lkst/.lklt/.meta]) plus one small CRC-framed pointer
   file [p.ckpt] naming the committed generation.  The snapshot files and
   the directory are fsynced {e before} the pointer is atomically renamed
   into place, so the pointer never names files that could be lost or
   half-written; the rename is the single commit point — there is no
   window in which load could see snapshot files from two different
   checkpoints.  Only after the pointer (and the directory entry for it)
   is durable may the WAL be truncated. *)

let ptr_path path = path ^ ".ckpt"
let ptr_magic = "RTA-CKPT-PTR-1"
let gen_prefix path gen = Printf.sprintf "%s.ckpt-%d" path gen
let snapshot_exts = [ ".lkst"; ".lklt"; ".meta" ]
let wal_path path = path ^ ".wal"

(* Prefix under which a [File]/[Mmap] engine materialises its page-file
   working set ([<p>.store.lkst.pages] etc.).  The page files are {e not}
   a recovery source — snapshot + WAL are; they are rebuilt here on every
   open, which is also what makes switching [store] kinds between runs
   safe. *)
let store_prefix path = path ^ ".store"

let fsync_dir_of vfs p = vfs.Storage.Vfs.v_sync_dir (Filename.dirname p)

let write_pointer vfs path gen =
  let w = Storage.Codec.Writer.create (String.length ptr_magic + 8 + 4) in
  String.iter (fun ch -> Storage.Codec.Writer.u8 w (Char.code ch)) ptr_magic;
  Storage.Codec.Writer.i64 w gen;
  let len = Storage.Codec.Writer.pos w in
  let buf = Storage.Codec.Writer.contents w in
  (* Unsigned 32-bit CRC: splice raw rather than through Writer.i32. *)
  Bytes.set_int32_le buf len (Int32.of_int (Storage.Codec.crc32 buf ~pos:0 ~len));
  Storage.Vfs.write_file_atomic vfs ~path:(ptr_path path) buf ~len:(len + 4);
  fsync_dir_of vfs path

(* [None] when no checkpoint was ever committed; a present-but-corrupt
   pointer fails loudly rather than silently recovering from an empty
   state (the WAL alone no longer holds the full history). *)
let read_pointer vfs path =
  let file = ptr_path path in
  if not (vfs.Storage.Vfs.v_exists file) then None
  else begin
    let buf = Storage.Vfs.read_file vfs file in
    let size = Bytes.length buf in
    let expect = String.length ptr_magic + 8 + 4 in
    if size <> expect then failwith "Durable: corrupt checkpoint pointer (bad size)";
    let crc = Int32.to_int (Bytes.get_int32_le buf (size - 4)) land 0xFFFFFFFF in
    if Storage.Codec.crc32 buf ~pos:0 ~len:(size - 4) <> crc then
      failwith "Durable: corrupt checkpoint pointer (checksum mismatch)";
    let rd = Storage.Codec.Reader.create buf in
    let magic =
      String.init (String.length ptr_magic) (fun _ -> Char.chr (Storage.Codec.Reader.u8 rd))
    in
    if magic <> ptr_magic then failwith "Durable: corrupt checkpoint pointer (bad magic)";
    Some (Storage.Codec.Reader.i64 rd)
  end

(* Snapshot files of any generation other than the committed one are
   leftovers of a checkpoint that crashed (or errored) before, or was
   superseded after, its pointer swap. *)
let remove_stale_generations vfs path ~keep =
  let dir = Filename.dirname path in
  let base = Filename.basename path ^ ".ckpt-" in
  Array.iter
    (fun name ->
      if String.length name > String.length base
         && String.sub name 0 (String.length base) = base then begin
        let rest = String.sub name (String.length base) (String.length name - String.length base) in
        match String.index_opt rest '.' with
        | Some dot ->
            (match int_of_string_opt (String.sub rest 0 dot) with
            | Some gen when gen <> keep ->
                (try vfs.Storage.Vfs.v_remove (Filename.concat dir name)
                 with Sys_error _ | E.Io _ -> ())
            | _ -> ())
        | None -> ()
      end)
    (try vfs.Storage.Vfs.v_readdir dir with Sys_error _ -> [||]);
  let tmp = ptr_path path ^ ".tmp" in
  if vfs.Storage.Vfs.v_exists tmp then
    try vfs.Storage.Vfs.v_remove tmp with Sys_error _ | E.Io _ -> ()

(* --- Recovery ----------------------------------------------------------------- *)

let apply_record rta rd =
  let seq = Storage.Codec.Reader.i64 rd in
  let op = Storage.Codec.Reader.u8 rd in
  let applied = Rta.n_updates rta in
  if seq <= applied then () (* already inside the checkpoint *)
  else if seq > applied + 1 then
    failwith
      (Printf.sprintf "Durable: WAL sequence gap (record %d over state %d)" seq applied)
  else
    match op with
    | x when x = op_insert ->
        let at = Storage.Codec.Reader.i64 rd in
        let key = Storage.Codec.Reader.i64 rd in
        let value = Storage.Codec.Reader.i64 rd in
        Rta.insert rta ~key ~value ~at
    | x when x = op_delete ->
        let at = Storage.Codec.Reader.i64 rd in
        let key = Storage.Codec.Reader.i64 rd in
        Rta.delete rta ~key ~at
    | x when x = op_vacuum_begin ->
        let horizon = Storage.Codec.Reader.i64 rd in
        Rta.vacuum_begin rta ~horizon
    | x when x = op_vacuum_chunk ->
        (* A checkpoint taken mid-vacuum snapshots only reachable pages,
           so a replayed chunk may name pages the snapshot never held;
           the appliers tolerate pages already gone or already clean. *)
        let _horizon = Storage.Codec.Reader.i64 rd in
        ignore (Rta.vacuum_apply rta (decode_vacuum_actions rd))
    | x -> failwith (Printf.sprintf "Durable: unknown WAL opcode %d" x)

let open_ ?config ?pool_capacity ?stats ?(sync_policy = Wal.Every_n 32)
    ?(checkpoint_every = 0) ?wal_stats ?(wal_wrap = fun f -> f)
    ?(retry = Some Storage.Retry.default) ?(telemetry = Telemetry.Tracer.noop)
    ?(vfs = Storage.Vfs.os) ?(store = Storage.Store_kind.Memory)
    ?(arena_backing = `Auto) ?watermarks ?disk_used ?(retention = Keep_all)
    ~max_key ~path () =
  (match watermarks with
  | Some (soft, hard) when soft <= 0 || hard < soft ->
      invalid_arg "Durable.open_: watermarks must satisfy 0 < soft <= hard"
  | _ -> ());
  (match retention with
  | Keep_last span when span < 0 ->
      invalid_arg "Durable.open_: negative retention span"
  | _ -> ());
  let stats = match stats with Some s -> s | None -> Storage.Io_stats.create () in
  (* Everything the engine does from here on — recovery reads, log
     appends, checkpoint writes — goes through the retry layer, so
     transient failures ([EINTR], [EIO], short transfers) are absorbed
     with backoff whatever vfs the caller handed in.  The tracer wraps
     outermost: a [vfs.*] span covers every retry of the syscall. *)
  let vfs =
    match retry with
    | None -> vfs
    | Some policy -> Storage.Vfs.with_retry ~stats ~policy vfs
  in
  let vfs = Storage.Vfs.with_telemetry telemetry vfs in
  let retries_at_open = Storage.Io_stats.retries stats in
  let pointer, ckpt_gen, rta, wal, n_replayed, dropped_bytes =
    Telemetry.Tracer.with_span telemetry "durable.recover"
      ~attrs:(fun () -> [ ("path", Telemetry.Tracer.Str path) ])
    @@ fun () ->
    let pointer = read_pointer vfs path in
    let ckpt_gen, rta =
      match pointer with
      | Some gen ->
          let rta =
            Rta.load ?pool_capacity ~stats ~telemetry ~vfs ~path:(gen_prefix path gen) ()
          in
          if Rta.max_key rta <> max_key then
            failwith
              (Printf.sprintf "Durable.open_: checkpoint has max_key %d, asked for %d"
                 (Rta.max_key rta) max_key);
          (gen, rta)
      | None -> (0, Rta.create ?config ?pool_capacity ~stats ~telemetry ~max_key ())
    in
    (* Snapshot files of a checkpoint that crashed before its commit point
       are dead weight; clear them so they cannot be confused with state. *)
    remove_stale_generations vfs path ~keep:ckpt_gen;
    let wal =
      Wal.open_log ~policy:sync_policy ?stats:wal_stats ~telemetry
        ~path:(wal_path path)
        (wal_wrap (vfs.Storage.Vfs.v_open `Log (wal_path path)))
    in
    let st = Wal.stats wal in
    let dropped_before = Wal.Stats.dropped_bytes st in
    let n_replayed = Wal.replay wal (apply_record rta) in
    (* With a page-file backend, the recovered state is now materialised
       into fresh page files and the engine runs over {e those}: every
       subsequent page touch is real disk I/O (or a mapped access), not a
       heap lookup.  Rebuilt on every open from snapshot + WAL — the page
       files are a working set, never a recovery source, so a torn or
       stale working set can never corrupt recovery. *)
    let rta =
      match store with
      | Storage.Store_kind.Memory -> rta
      | (File | Mmap) as kind ->
          Telemetry.Tracer.with_span telemetry "durable.materialize"
            ~attrs:(fun () ->
              [ ("store", Telemetry.Tracer.Str (Storage.Store_kind.to_string kind)) ])
          @@ fun () ->
          (* Analytic configs push [b] past what a 4 KiB page holds, so
             size the working set to the config — rounded up to 4 KiB so
             mapped pages stay OS-page aligned. *)
          let page_size =
            (max 4096 (Rta.min_page_size (Rta.config rta)) + 4095) / 4096 * 4096
          in
          Rta.materialize_durable ?pool_capacity ~stats ~telemetry ~vfs ~store:kind
            ~backing:arena_backing ~page_size ~path:(store_prefix path) rta
    in
    (pointer, ckpt_gen, rta, wal, n_replayed,
     Wal.Stats.dropped_bytes st - dropped_before)
  in
  let report = { replayed = n_replayed; dropped_bytes; checkpoint_gen = pointer } in
  (* The default disk-usage probe is the WAL's size: between checkpoints
     it is the engine's one unboundedly growing file, and it is the one
     thing vacuum + checkpoint can actually shrink.  Deployments with a
     fuller picture (statvfs, quota APIs) pass their own thunk. *)
  let disk_used =
    match disk_used with Some f -> f | None -> fun () -> Wal.size wal
  in
  (* An engine can open already past a watermark (the disk filled while
     it was down); no hooks are registered yet, so the initial published
     health is computed directly. *)
  let pressure =
    match watermarks with
    | None -> Normal
    | Some (soft, hard) ->
        let used = disk_used () in
        if used >= hard then Hard else if used >= soft then Soft else Normal
  in
  let health =
    match pressure with Hard -> Read_only | Soft -> Degraded | Normal -> Healthy
  in
  (* Replayed records are exactly the updates the last checkpoint missed,
     so they count toward the next automatic checkpoint. *)
  { rta; wal; vfs; stats; tel = telemetry; path; store; checkpoint_every;
    watermarks; disk_used; retention; ckpt_gen;
    ckpt_attempt = ckpt_gen; since_ckpt = n_replayed; n_ckpts = 0; health;
    io_health = Healthy; pressure;
    last_error = None; ckpt_failed = false; retries_seen = retries_at_open;
    health_hooks = []; in_vacuum = false; n_vacuums = 0; phase_cell = None; report }

(* --- Health ------------------------------------------------------------------- *)

(* Two machines feed one published state.  [io_health] is the sticky
   I/O machine of the original design: Read_only is entered when an
   update's log append surfaces an error (the retry budget is already
   spent by then, so the failure is persistent for practical purposes —
   the canonical case being a full disk) and never left for the life of
   the handle; Degraded means retries were needed recently or the last
   checkpoint attempt failed.  [pressure] is the disk-space watermark
   machine: Soft above the soft watermark (keep serving, vacuum
   aggressively), Hard above the hard one (stop accepting updates before
   the disk actually fills).  The published [health] — what {!health}
   returns and hooks observe — is their join:

     io Read_only or pressure Hard  ->  Read_only
     io Degraded  or pressure Soft  ->  Degraded
     otherwise                      ->  Healthy

   Unlike io Read_only, pressure is {e not} sticky: vacuum + checkpoint
   shrink the disk footprint, the next refresh drops the watermark, and
   the published state recovers. *)

let health_name = function
  | Healthy -> "healthy"
  | Degraded -> "degraded"
  | Read_only -> "read-only"

let pressure_name = function Normal -> "normal" | Soft -> "soft" | Hard -> "hard"

(* Every actual transition (and only transitions, not the per-op
   re-assertions of the current state) is an event on the trace. *)
let set_health t h =
  if t.health <> h then begin
    let prev = t.health in
    t.health <- h;
    Telemetry.Tracer.event t.tel "durable.health"
      ~attrs:
        [ ("from", Telemetry.Tracer.Str (health_name prev));
          ("to", Telemetry.Tracer.Str (health_name h)) ];
    (* Hooks run after the state is committed, so a callback reading
       [health t] sees the new state.  A raising hook would poison the
       update path it fired from — swallow, the hook is best-effort. *)
    List.iter (fun f -> try f prev h with _ -> ()) t.health_hooks
  end

let publish t =
  set_health t
    (match (t.io_health, t.pressure) with
    | Read_only, _ | _, Hard -> Read_only
    | Degraded, _ | _, Soft -> Degraded
    | Healthy, Normal -> Healthy)

let on_health_change t f = t.health_hooks <- f :: t.health_hooks

let enter_read_only t e =
  t.last_error <- Some e;
  if t.io_health <> Read_only then begin
    t.io_health <- Read_only;
    Storage.Io_stats.record_read_only_transition t.stats
  end;
  publish t

let note_op_complete t =
  if t.io_health <> Read_only then begin
    let r = Storage.Io_stats.retries t.stats in
    if r > t.retries_seen then begin
      t.retries_seen <- r;
      t.io_health <- Degraded
    end
    else if t.ckpt_failed then t.io_health <- Degraded
    else begin
      t.io_health <- Healthy;
      if t.pressure = Normal then t.last_error <- None
    end
  end;
  publish t

(* Re-read the disk-usage probe against the watermarks.  Called after
   every mutation, checkpoint and vacuum step — the points where usage
   changes — and exposed for callers with external probes. *)
let refresh_pressure t =
  (match t.watermarks with
  | None -> ()
  | Some (soft, hard) ->
      let used = t.disk_used () in
      let p = if used >= hard then Hard else if used >= soft then Soft else Normal in
      if p <> t.pressure then begin
        let prev = t.pressure in
        t.pressure <- p;
        Telemetry.Tracer.event t.tel "durable.pressure"
          ~attrs:
            [ ("from", Telemetry.Tracer.Str (pressure_name prev));
              ("to", Telemetry.Tracer.Str (pressure_name p));
              ("used", Telemetry.Tracer.Int used) ];
        if p = Hard then
          t.last_error <-
            Some
              (E.v ~op:E.Append ~path:(wal_path t.path)
                 ~detail:(Printf.sprintf "disk hard watermark (%d >= %d bytes)" used hard)
                 E.Read_only_store);
        publish t
      end);
  t.pressure

(* --- Checkpointing ------------------------------------------------------------ *)

let checkpoint t =
  (* Gates on [io_health], not the published state: a checkpoint under
     Hard watermark pressure is exactly the maintenance that frees disk
     (the WAL truncates once the snapshot commits), so pressure must not
     be able to lock the engine out of its own escape hatch. *)
  match t.io_health with
  | Read_only ->
      Error
        (E.v ~op:E.Pwrite ~path:t.path ~detail:"checkpoint refused" E.Read_only_store)
  | Healthy | Degraded -> (
      (* Never reuse the generation of a failed attempt: its files may
         exist in any half-written state, and if an earlier attempt got as
         far as the pointer rename, rewriting the files that committed
         pointer names would race the atomicity argument. *)
      let gen = 1 + max t.ckpt_gen t.ckpt_attempt in
      t.ckpt_attempt <- gen;
      Telemetry.Tracer.with_span t.tel "durable.checkpoint"
        ~attrs:(fun () -> [ ("gen", Telemetry.Tracer.Int gen) ])
      @@ fun () ->
      let prefix = gen_prefix t.path gen in
      match
        E.protect (fun () ->
            (* Working set first: dirty pages reach their page files (and,
               under mmap, the arena msyncs and commits its header) before
               the WAL that could rebuild them is allowed to truncate. *)
            Rta.flush t.rta;
            Rta.save ~vfs:t.vfs t.rta ~path:prefix;
            (* Force the snapshot files (and the new directory entries) to
               the platter before the pointer can name them, and the
               pointer before the WAL — the log records may only be
               discarded once the state they rebuild is durable without
               them. *)
            List.iter (fun ext -> Storage.Vfs.sync_path t.vfs (prefix ^ ext)) snapshot_exts;
            fsync_dir_of t.vfs t.path;
            write_pointer t.vfs t.path gen)
      with
      | Error e ->
          (* The pointer still names the previous generation, which is
             untouched; this attempt's files are stale leftovers swept on
             the next open.  The WAL still holds every update, so the
             engine keeps accepting writes — degraded, not read-only. *)
          t.ckpt_failed <- true;
          t.last_error <- Some e;
          if t.io_health <> Read_only then t.io_health <- Degraded;
          publish t;
          Error e
      | Ok () ->
          let old = t.ckpt_gen in
          t.ckpt_gen <- gen;
          t.since_ckpt <- 0;
          t.n_ckpts <- t.n_ckpts + 1;
          t.ckpt_failed <- false;
          (* Pointer durable: every log record is now redundant.  A failed
             truncation costs space, not correctness — replay seq-skips
             covered records — so the checkpoint still counts. *)
          (match Wal.truncate t.wal with
          | Ok () -> ()
          | Error e ->
              t.last_error <- Some e;
              if t.io_health <> Read_only then begin
                t.io_health <- Degraded;
                publish t
              end);
          ignore (refresh_pressure t);
          if old > 0 then
            List.iter
              (fun ext ->
                try t.vfs.Storage.Vfs.v_remove (gen_prefix t.path old ^ ext)
                with Sys_error _ | E.Io _ -> ())
              snapshot_exts;
          note_op_complete t;
          Ok ())

let maybe_auto_checkpoint t =
  if t.checkpoint_every > 0 && t.since_ckpt >= t.checkpoint_every then
    (* The update that tripped the threshold is already logged and
       applied; a failed background checkpoint leaves it fully durable
       via the WAL, so the failure degrades health instead of failing
       the update.  [checkpoint] records error state itself. *)
    match checkpoint t with Ok () -> () | Error _ -> ()

(* --- Updates ------------------------------------------------------------------ *)

(* Validation mirrors Rta's own checks and runs before anything is logged,
   so applying a logged record cannot fail (neither here nor on replay).
   Precondition violations are caller bugs and still raise
   [Invalid_argument]; the [result] channel is reserved for I/O. *)

(* Group commit's second half: the server batcher opens the engine with
   [Wal.Never], appends a whole batch of updates without per-record
   fsyncs, then forces one sync here before acknowledging any of them.
   A failed fsync is treated exactly like a failed append — the device
   refused durability, and quietly acknowledging later writes on top of a
   maybe-lost tail would be fraud — so the engine goes read-only.  Gates
   on [io_health]: records already appended under a watermark that has
   since turned Hard must still be syncable — they were accepted. *)
let sync_wal t =
  match t.io_health with
  | Read_only ->
      Error (E.v ~op:E.Fsync ~path:(wal_path t.path) ~detail:"sync refused" E.Read_only_store)
  | Healthy | Degraded -> (
      if Wal.unsynced t.wal = 0 then Ok ()
      else
        match Wal.sync t.wal with
        | Ok () ->
            note_op_complete t;
            Ok ()
        | Error e ->
            enter_read_only t e;
            Error e)

(* Normal updates gate on the {e published} health — so a Hard watermark
   rejects them — while maintenance records (vacuum) gate only on the
   sticky [io_health], for the same reason {!checkpoint} does: retention
   work is how the engine gets back {e under} the watermark. *)
let reject_if_read_only ?(maintenance = false) t =
  let effective = if maintenance then t.io_health else t.health in
  match effective with
  | Read_only ->
      let detail =
        if t.io_health = Read_only then "update rejected"
        else "update rejected (disk hard watermark)"
      in
      Error (E.v ~op:E.Append ~path:(wal_path t.path) ~detail E.Read_only_store)
  | Healthy | Degraded -> Ok ()

let rec log_then_apply ?maintenance t ~append ~apply =
  match reject_if_read_only ?maintenance t with
  | Error _ as e -> e
  | Ok () -> (
      (* Phase accounting piggybacks here because this is the one place
         that sees the append and the tree apply as separate steps. *)
      let append, apply =
        match t.phase_cell with
        | None -> (append, apply)
        | Some c ->
            let timed phase f () =
              let t0 = Telemetry.Phases.now_ns () in
              let r = f () in
              Telemetry.Phases.charge c phase ~since:t0;
              r
            in
            (timed Telemetry.Phases.Wal_append append, timed Telemetry.Phases.Apply apply)
      in
      match append () with
      | Error e ->
          (* Nothing was logged (Wal.append rolls back) and nothing was
             applied: the warehouse is exactly as before the call, and
             every prior acknowledged update is still recoverable. *)
          enter_read_only t e;
          Error e
      | Ok () ->
          apply ();
          t.since_ckpt <- t.since_ckpt + 1;
          maybe_auto_checkpoint t;
          ignore (refresh_pressure t);
          maybe_auto_vacuum t;
          note_op_complete t;
          Ok ())

(* Watermark pressure with a retention policy configured: vacuum down to
   the policy's horizon, then checkpoint so the WAL (the growing file)
   actually shrinks, then re-probe.  Guarded by [in_vacuum] because the
   vacuum's own WAL records come back through [log_then_apply]. *)
and maybe_auto_vacuum t =
  if (not t.in_vacuum) && t.pressure <> Normal then
    match t.retention with
    | Keep_all -> ()
    | Keep_last span ->
        let target = Rta.now t.rta - span in
        if target > Rta.horizon t.rta && target >= 0 then begin
          (match vacuum t ~horizon:target with Ok _ | Error _ -> ());
          (match checkpoint t with Ok () | Error _ -> ());
          ignore (refresh_pressure t)
        end

and vacuum_begin t ~horizon =
  (* Validation mirrors Rta.vacuum_begin and runs before anything is
     logged, so applying (and replaying) the record cannot fail. *)
  if horizon < 0 then invalid_arg "Durable.vacuum_begin: negative horizon";
  if horizon < Rta.horizon t.rta then
    invalid_arg
      (Printf.sprintf "Durable.vacuum_begin: horizon moves backwards (%d < %d)" horizon
         (Rta.horizon t.rta));
  if horizon > Rta.now t.rta then
    invalid_arg
      (Printf.sprintf "Durable.vacuum_begin: horizon %d beyond current time %d" horizon
         (Rta.now t.rta));
  let buf, len = encode_vacuum_begin ~seq:(Rta.n_updates t.rta + 1) ~horizon in
  log_then_apply ~maintenance:true t
    ~append:(fun () -> Wal.append t.wal ~len buf)
    ~apply:(fun () -> Rta.vacuum_begin t.rta ~horizon)

and vacuum_chunk t actions =
  let buf, len =
    encode_vacuum_chunk ~seq:(Rta.n_updates t.rta + 1) ~horizon:(Rta.horizon t.rta)
      actions
  in
  let progress = ref Rta.vacuum_progress_zero in
  match
    log_then_apply ~maintenance:true t
      ~append:(fun () -> Wal.append t.wal ~len buf)
      ~apply:(fun () -> progress := Rta.vacuum_apply t.rta actions)
  with
  | Ok () -> Ok !progress
  | Error e -> Error e

and vacuum ?(max_pages_per_step = 128) t ~horizon =
  if max_pages_per_step < 1 || max_pages_per_step > 65536 then
    invalid_arg "Durable.vacuum: max_pages_per_step out of range";
  Telemetry.Tracer.with_span t.tel "durable.vacuum"
    ~attrs:(fun () -> [ ("horizon", Telemetry.Tracer.Int horizon) ])
  @@ fun () ->
  let was_in_vacuum = t.in_vacuum in
  t.in_vacuum <- true;
  Fun.protect ~finally:(fun () -> t.in_vacuum <- was_in_vacuum) @@ fun () ->
  match vacuum_begin t ~horizon with
  | Error _ as e -> e
  | Ok () ->
      let chunks = Rta.vacuum_plan ~max_pages:max_pages_per_step t.rta in
      let rec go acc steps = function
        | [] -> (
            (* The vacuum's WAL records must be durable before the report
               claims the retention work happened. *)
            match sync_wal t with
            | Error _ as e -> e
            | Ok () ->
                t.n_vacuums <- t.n_vacuums + 1;
                ignore (refresh_pressure t);
                Ok { Rta.v_horizon = horizon; v_steps = steps; v_progress = acc })
        | c :: rest -> (
            match vacuum_chunk t c with
            | Error _ as e -> e
            | Ok p -> go (Rta.vacuum_progress_add acc p) (steps + 1) rest)
      in
      go Rta.vacuum_progress_zero 0 chunks

let insert t ~key ~value ~at =
  if key < 0 || key >= Rta.max_key t.rta then
    invalid_arg "Durable.insert: key outside key space";
  if Rta.is_alive t.rta ~key then
    invalid_arg (Printf.sprintf "Durable.insert: key %d is already alive (1TNF)" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_insert ~seq:(Rta.n_updates t.rta + 1) ~key ~value ~at in
  Telemetry.Tracer.with_span t.tel "durable.insert"
    ~attrs:(fun () -> [ ("key", Telemetry.Tracer.Int key) ])
  @@ fun () ->
  log_then_apply t
    ~append:(fun () -> Wal.append t.wal ~len buf)
    ~apply:(fun () -> Rta.insert t.rta ~key ~value ~at)

let delete t ~key ~at =
  if not (Rta.is_alive t.rta ~key) then
    invalid_arg (Printf.sprintf "Durable.delete: key %d is not alive" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_delete ~seq:(Rta.n_updates t.rta + 1) ~key ~at in
  Telemetry.Tracer.with_span t.tel "durable.delete"
    ~attrs:(fun () -> [ ("key", Telemetry.Tracer.Int key) ])
  @@ fun () ->
  log_then_apply t
    ~append:(fun () -> Wal.append t.wal ~len buf)
    ~apply:(fun () -> Rta.delete t.rta ~key ~at)

(* --- Accessors ---------------------------------------------------------------- *)

let warehouse t = t.rta
let sum_count t ~klo ~khi ~tlo ~thi = Rta.sum_count t.rta ~klo ~khi ~tlo ~thi
let recovery_report t = t.report
let replayed_on_open t = t.report.replayed
let updates_since_checkpoint t = t.since_ckpt
let checkpoints t = t.n_ckpts
let wal_stats t = Wal.stats t.wal
let wal_unsynced t = Wal.unsynced t.wal
let sync_policy t = Wal.policy t.wal
let health t = t.health
let io_health t = t.io_health
let pressure t = t.pressure
let horizon t = Rta.horizon t.rta
let store_kind t = t.store
let vacuums t = t.n_vacuums
let disk_used t = t.disk_used ()
let retention t = t.retention
let last_error t = t.last_error
let io_stats t = t.stats
let telemetry t = t.tel
let set_phase_cell t c = t.phase_cell <- c

let close t =
  (* Best effort: a failing final fsync must not prevent releasing the
     file — whatever the log already holds is what recovery will see.
     The page-file working set is flushed first so a clean shutdown
     leaves it consistent (a torn one is rebuilt on open anyway). *)
  (match Rta.try_flush t.rta with Ok () | Error _ -> ());
  (match Wal.sync t.wal with Ok () -> () | Error _ -> ());
  Wal.close t.wal
