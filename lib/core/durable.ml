type t = {
  rta : Rta.t;
  wal : Wal.t;
  path : string;
  checkpoint_every : int;
  mutable since_ckpt : int;
  mutable n_ckpts : int;
  n_replayed : int;
}

(* --- WAL record payloads ------------------------------------------------------ *)

(* seq i64 | op u8 | at i64 | key i64 | value i64 (inserts only).  [seq] is
   the warehouse's n_updates after applying the record, so recovery can
   tell which records a checkpoint already covers. *)

let op_insert = 1
let op_delete = 2
let record_max_bytes = 8 + 1 + 8 + 8 + 8

let encode_insert ~seq ~key ~value ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_insert;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  Storage.Codec.Writer.i64 w value;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

let encode_delete ~seq ~key ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_delete;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

(* --- Checkpoint files --------------------------------------------------------- *)

let ckpt_prefix path = path ^ ".ckpt"
let ckpt_tmp_prefix path = path ^ ".ckpt-tmp"
let snapshot_exts = [ ".lkst"; ".lklt"; ".meta" ]
let wal_path path = path ^ ".wal"

let checkpoint_exists path = Sys.file_exists (ckpt_prefix path ^ ".meta")

(* --- Recovery ----------------------------------------------------------------- *)

let apply_record rta rd =
  let seq = Storage.Codec.Reader.i64 rd in
  let op = Storage.Codec.Reader.u8 rd in
  let at = Storage.Codec.Reader.i64 rd in
  let key = Storage.Codec.Reader.i64 rd in
  let applied = Rta.n_updates rta in
  if seq <= applied then () (* already inside the checkpoint *)
  else if seq > applied + 1 then
    failwith
      (Printf.sprintf "Durable: WAL sequence gap (record %d over state %d)" seq applied)
  else
    match op with
    | x when x = op_insert ->
        let value = Storage.Codec.Reader.i64 rd in
        Rta.insert rta ~key ~value ~at
    | x when x = op_delete -> Rta.delete rta ~key ~at
    | x -> failwith (Printf.sprintf "Durable: unknown WAL opcode %d" x)

let open_ ?config ?pool_capacity ?stats ?(sync_policy = Wal.Every_n 32)
    ?(checkpoint_every = 0) ?wal_stats ?(wal_wrap = fun f -> f) ~max_key ~path () =
  let rta =
    if checkpoint_exists path then begin
      let rta = Rta.load ?pool_capacity ?stats ~path:(ckpt_prefix path) () in
      if Rta.max_key rta <> max_key then
        failwith
          (Printf.sprintf "Durable.open_: checkpoint has max_key %d, asked for %d"
             (Rta.max_key rta) max_key);
      rta
    end
    else Rta.create ?config ?pool_capacity ?stats ~max_key ()
  in
  let wal =
    Wal.open_log ~policy:sync_policy ?stats:wal_stats (wal_wrap (Wal.os_file ~path:(wal_path path)))
  in
  let n_replayed = Wal.replay wal (apply_record rta) in
  (* Replayed records are exactly the updates the last checkpoint missed,
     so they count toward the next automatic checkpoint. *)
  { rta; wal; path; checkpoint_every; since_ckpt = n_replayed; n_ckpts = 0; n_replayed }

(* --- Checkpointing ------------------------------------------------------------ *)

let checkpoint t =
  let tmp = ckpt_tmp_prefix t.path and final = ckpt_prefix t.path in
  Rta.save t.rta ~path:tmp;
  (* Rename data files first, the meta file last: its presence is the
     commit point checkpoint_exists keys off, so a crash anywhere in this
     sequence leaves either the old checkpoint or the new one — never a
     half-visible mix that load would trust. *)
  List.iter (fun ext -> Sys.rename (tmp ^ ext) (final ^ ext)) snapshot_exts;
  Wal.truncate t.wal;
  t.since_ckpt <- 0;
  t.n_ckpts <- t.n_ckpts + 1

let maybe_auto_checkpoint t =
  if t.checkpoint_every > 0 && t.since_ckpt >= t.checkpoint_every then checkpoint t

(* --- Updates ------------------------------------------------------------------ *)

(* Validation mirrors Rta's own checks and runs before anything is logged,
   so applying a logged record cannot fail (neither here nor on replay). *)

let insert t ~key ~value ~at =
  if key < 0 || key >= Rta.max_key t.rta then
    invalid_arg "Durable.insert: key outside key space";
  if Rta.is_alive t.rta ~key then
    invalid_arg (Printf.sprintf "Durable.insert: key %d is already alive (1TNF)" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_insert ~seq:(Rta.n_updates t.rta + 1) ~key ~value ~at in
  Wal.append t.wal ~len buf;
  Rta.insert t.rta ~key ~value ~at;
  t.since_ckpt <- t.since_ckpt + 1;
  maybe_auto_checkpoint t

let delete t ~key ~at =
  if not (Rta.is_alive t.rta ~key) then
    invalid_arg (Printf.sprintf "Durable.delete: key %d is not alive" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_delete ~seq:(Rta.n_updates t.rta + 1) ~key ~at in
  Wal.append t.wal ~len buf;
  Rta.delete t.rta ~key ~at;
  t.since_ckpt <- t.since_ckpt + 1;
  maybe_auto_checkpoint t

(* --- Accessors ---------------------------------------------------------------- *)

let warehouse t = t.rta
let sum_count t ~klo ~khi ~tlo ~thi = Rta.sum_count t.rta ~klo ~khi ~tlo ~thi
let replayed_on_open t = t.n_replayed
let updates_since_checkpoint t = t.since_ckpt
let checkpoints t = t.n_ckpts
let wal_stats t = Wal.stats t.wal
let sync_policy t = Wal.policy t.wal

let close t =
  Wal.sync t.wal;
  Wal.close t.wal
