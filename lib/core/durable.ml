type recovery_report = {
  replayed : int;  (* WAL records replayed (applied or seq-skipped) *)
  dropped_bytes : int;  (* torn/corrupt tail discarded by this recovery *)
  checkpoint_gen : int option;  (* committed generation loaded, if any *)
}

let pp_recovery_report ppf r =
  Format.fprintf ppf "checkpoint=%s replayed=%d dropped_bytes=%d"
    (match r.checkpoint_gen with None -> "none" | Some g -> "gen " ^ string_of_int g)
    r.replayed r.dropped_bytes

type t = {
  rta : Rta.t;
  wal : Wal.t;
  vfs : Storage.Vfs.t;
  path : string;
  checkpoint_every : int;
  mutable ckpt_gen : int; (* generation named by the committed pointer *)
  mutable since_ckpt : int;
  mutable n_ckpts : int;
  report : recovery_report;
}

(* --- WAL record payloads ------------------------------------------------------ *)

(* seq i64 | op u8 | at i64 | key i64 | value i64 (inserts only).  [seq] is
   the warehouse's n_updates after applying the record, so recovery can
   tell which records a checkpoint already covers. *)

let op_insert = 1
let op_delete = 2
let record_max_bytes = 8 + 1 + 8 + 8 + 8

let encode_insert ~seq ~key ~value ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_insert;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  Storage.Codec.Writer.i64 w value;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

let encode_delete ~seq ~key ~at =
  let w = Storage.Codec.Writer.create record_max_bytes in
  Storage.Codec.Writer.i64 w seq;
  Storage.Codec.Writer.u8 w op_delete;
  Storage.Codec.Writer.i64 w at;
  Storage.Codec.Writer.i64 w key;
  (Storage.Codec.Writer.contents w, Storage.Codec.Writer.pos w)

(* --- Checkpoint files --------------------------------------------------------- *)

(* A checkpoint is three snapshot files under a generation-stamped prefix
   ([p.ckpt-<gen>.lkst/.lklt/.meta]) plus one small CRC-framed pointer
   file [p.ckpt] naming the committed generation.  The snapshot files and
   the directory are fsynced {e before} the pointer is atomically renamed
   into place, so the pointer never names files that could be lost or
   half-written; the rename is the single commit point — there is no
   window in which load could see snapshot files from two different
   checkpoints.  Only after the pointer (and the directory entry for it)
   is durable may the WAL be truncated. *)

let ptr_path path = path ^ ".ckpt"
let ptr_magic = "RTA-CKPT-PTR-1"
let gen_prefix path gen = Printf.sprintf "%s.ckpt-%d" path gen
let snapshot_exts = [ ".lkst"; ".lklt"; ".meta" ]
let wal_path path = path ^ ".wal"

let fsync_dir_of vfs p = vfs.Storage.Vfs.v_sync_dir (Filename.dirname p)

let write_pointer vfs path gen =
  let w = Storage.Codec.Writer.create (String.length ptr_magic + 8 + 4) in
  String.iter (fun ch -> Storage.Codec.Writer.u8 w (Char.code ch)) ptr_magic;
  Storage.Codec.Writer.i64 w gen;
  let len = Storage.Codec.Writer.pos w in
  let buf = Storage.Codec.Writer.contents w in
  (* Unsigned 32-bit CRC: splice raw rather than through Writer.i32. *)
  Bytes.set_int32_le buf len (Int32.of_int (Storage.Codec.crc32 buf ~pos:0 ~len));
  Storage.Vfs.write_file_atomic vfs ~path:(ptr_path path) buf ~len:(len + 4);
  fsync_dir_of vfs path

(* [None] when no checkpoint was ever committed; a present-but-corrupt
   pointer fails loudly rather than silently recovering from an empty
   state (the WAL alone no longer holds the full history). *)
let read_pointer vfs path =
  let file = ptr_path path in
  if not (vfs.Storage.Vfs.v_exists file) then None
  else begin
    let buf = Storage.Vfs.read_file vfs file in
    let size = Bytes.length buf in
    let expect = String.length ptr_magic + 8 + 4 in
    if size <> expect then failwith "Durable: corrupt checkpoint pointer (bad size)";
    let crc = Int32.to_int (Bytes.get_int32_le buf (size - 4)) land 0xFFFFFFFF in
    if Storage.Codec.crc32 buf ~pos:0 ~len:(size - 4) <> crc then
      failwith "Durable: corrupt checkpoint pointer (checksum mismatch)";
    let rd = Storage.Codec.Reader.create buf in
    let magic =
      String.init (String.length ptr_magic) (fun _ -> Char.chr (Storage.Codec.Reader.u8 rd))
    in
    if magic <> ptr_magic then failwith "Durable: corrupt checkpoint pointer (bad magic)";
    Some (Storage.Codec.Reader.i64 rd)
  end

(* Snapshot files of any generation other than the committed one are
   leftovers of a checkpoint that crashed before (or was superseded
   after) its pointer swap. *)
let remove_stale_generations vfs path ~keep =
  let dir = Filename.dirname path in
  let base = Filename.basename path ^ ".ckpt-" in
  Array.iter
    (fun name ->
      if String.length name > String.length base
         && String.sub name 0 (String.length base) = base then begin
        let rest = String.sub name (String.length base) (String.length name - String.length base) in
        match String.index_opt rest '.' with
        | Some dot ->
            (match int_of_string_opt (String.sub rest 0 dot) with
            | Some gen when gen <> keep ->
                (try vfs.Storage.Vfs.v_remove (Filename.concat dir name)
                 with Sys_error _ -> ())
            | _ -> ())
        | None -> ()
      end)
    (try vfs.Storage.Vfs.v_readdir dir with Sys_error _ -> [||]);
  let tmp = ptr_path path ^ ".tmp" in
  if vfs.Storage.Vfs.v_exists tmp then
    try vfs.Storage.Vfs.v_remove tmp with Sys_error _ -> ()

(* --- Recovery ----------------------------------------------------------------- *)

let apply_record rta rd =
  let seq = Storage.Codec.Reader.i64 rd in
  let op = Storage.Codec.Reader.u8 rd in
  let at = Storage.Codec.Reader.i64 rd in
  let key = Storage.Codec.Reader.i64 rd in
  let applied = Rta.n_updates rta in
  if seq <= applied then () (* already inside the checkpoint *)
  else if seq > applied + 1 then
    failwith
      (Printf.sprintf "Durable: WAL sequence gap (record %d over state %d)" seq applied)
  else
    match op with
    | x when x = op_insert ->
        let value = Storage.Codec.Reader.i64 rd in
        Rta.insert rta ~key ~value ~at
    | x when x = op_delete -> Rta.delete rta ~key ~at
    | x -> failwith (Printf.sprintf "Durable: unknown WAL opcode %d" x)

let open_ ?config ?pool_capacity ?stats ?(sync_policy = Wal.Every_n 32)
    ?(checkpoint_every = 0) ?wal_stats ?(wal_wrap = fun f -> f)
    ?(vfs = Storage.Vfs.os) ~max_key ~path () =
  let pointer = read_pointer vfs path in
  let ckpt_gen, rta =
    match pointer with
    | Some gen ->
        let rta = Rta.load ?pool_capacity ?stats ~vfs ~path:(gen_prefix path gen) () in
        if Rta.max_key rta <> max_key then
          failwith
            (Printf.sprintf "Durable.open_: checkpoint has max_key %d, asked for %d"
               (Rta.max_key rta) max_key);
        (gen, rta)
    | None -> (0, Rta.create ?config ?pool_capacity ?stats ~max_key ())
  in
  (* Snapshot files of a checkpoint that crashed before its commit point
     are dead weight; clear them so they cannot be confused with state. *)
  remove_stale_generations vfs path ~keep:ckpt_gen;
  let wal =
    Wal.open_log ~policy:sync_policy ?stats:wal_stats
      (wal_wrap (vfs.Storage.Vfs.v_open `Log (wal_path path)))
  in
  let st = Wal.stats wal in
  let dropped_before = Wal.Stats.dropped_bytes st in
  let n_replayed = Wal.replay wal (apply_record rta) in
  let report =
    { replayed = n_replayed;
      dropped_bytes = Wal.Stats.dropped_bytes st - dropped_before;
      checkpoint_gen = pointer }
  in
  (* Replayed records are exactly the updates the last checkpoint missed,
     so they count toward the next automatic checkpoint. *)
  { rta; wal; vfs; path; checkpoint_every; ckpt_gen; since_ckpt = n_replayed;
    n_ckpts = 0; report }

(* --- Checkpointing ------------------------------------------------------------ *)

let checkpoint t =
  let gen = t.ckpt_gen + 1 in
  let prefix = gen_prefix t.path gen in
  Rta.save ~vfs:t.vfs t.rta ~path:prefix;
  (* Force the snapshot files (and the new directory entries) to the
     platter before the pointer can name them, and the pointer before the
     WAL — the log records may only be discarded once the state they
     rebuild is durable without them. *)
  List.iter (fun ext -> Storage.Vfs.sync_path t.vfs (prefix ^ ext)) snapshot_exts;
  fsync_dir_of t.vfs t.path;
  write_pointer t.vfs t.path gen;
  Wal.truncate t.wal;
  let old = t.ckpt_gen in
  t.ckpt_gen <- gen;
  t.since_ckpt <- 0;
  t.n_ckpts <- t.n_ckpts + 1;
  if old > 0 then
    List.iter
      (fun ext ->
        try t.vfs.Storage.Vfs.v_remove (gen_prefix t.path old ^ ext)
        with Sys_error _ -> ())
      snapshot_exts

let maybe_auto_checkpoint t =
  if t.checkpoint_every > 0 && t.since_ckpt >= t.checkpoint_every then checkpoint t

(* --- Updates ------------------------------------------------------------------ *)

(* Validation mirrors Rta's own checks and runs before anything is logged,
   so applying a logged record cannot fail (neither here nor on replay). *)

let insert t ~key ~value ~at =
  if key < 0 || key >= Rta.max_key t.rta then
    invalid_arg "Durable.insert: key outside key space";
  if Rta.is_alive t.rta ~key then
    invalid_arg (Printf.sprintf "Durable.insert: key %d is already alive (1TNF)" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_insert ~seq:(Rta.n_updates t.rta + 1) ~key ~value ~at in
  Wal.append t.wal ~len buf;
  Rta.insert t.rta ~key ~value ~at;
  t.since_ckpt <- t.since_ckpt + 1;
  maybe_auto_checkpoint t

let delete t ~key ~at =
  if not (Rta.is_alive t.rta ~key) then
    invalid_arg (Printf.sprintf "Durable.delete: key %d is not alive" key);
  if at < Rta.now t.rta then
    invalid_arg "Durable: time went backwards (transaction time is monotone)";
  let buf, len = encode_delete ~seq:(Rta.n_updates t.rta + 1) ~key ~at in
  Wal.append t.wal ~len buf;
  Rta.delete t.rta ~key ~at;
  t.since_ckpt <- t.since_ckpt + 1;
  maybe_auto_checkpoint t

(* --- Accessors ---------------------------------------------------------------- *)

let warehouse t = t.rta
let sum_count t ~klo ~khi ~tlo ~thi = Rta.sum_count t.rta ~klo ~khi ~tlo ~thi
let recovery_report t = t.report
let replayed_on_open t = t.report.replayed
let updates_since_checkpoint t = t.since_ckpt
let checkpoints t = t.n_ckpts
let wal_stats t = Wal.stats t.wal
let sync_policy t = Wal.policy t.wal

let close t =
  Wal.sync t.wal;
  Wal.close t.wal
