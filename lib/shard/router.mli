(** Key-range routing: the partition of the key domain into contiguous
    shards.

    The warehouse key domain is the half-open interval [\[0, max_key)]
    (the keys {!Rta.insert} accepts).  A router splits it into [n]
    contiguous, disjoint, covering ranges

    {v
    shard 0        shard 1              shard n-1
    [0, b_1) , [b_1, b_2) , ... , [b_(n-1), max_key)
    v}

    so every key belongs to exactly one shard and a key-range query
    decomposes into at most [n] sub-ranges whose union is the original
    range.  Because the paper's Theorem-1 aggregates (SUM and COUNT) are
    dominance sums, the per-shard answers compose by addition — see
    {!Plan}.

    Routers are immutable and safe to share across domains. *)

type t

val create : ?boundaries:int list -> shards:int -> max_key:int -> unit -> t
(** [create ~shards ~max_key ()] splits [\[0, max_key)] into [shards]
    near-equal ranges.  [boundaries], when given, lists the {e interior}
    split points [b_1 < ... < b_(n-1)] explicitly (each in
    [(0, max_key)]) and overrides the even split; it must have exactly
    [shards - 1] elements.
    @raise Invalid_argument if [shards < 1], [shards > max_key], or the
    boundaries are not strictly increasing interior points. *)

val shards : t -> int
val max_key : t -> int

val start : t -> int -> int
(** First key of shard [i]. *)

val range : t -> int -> int * int
(** [range t i] is the half-open key range [(lo, hi)] of shard [i]:
    keys [k] with [lo <= k < hi]. *)

val shard_of_key : t -> int -> int
(** The shard owning [key] (binary search; keys outside [\[0, max_key)]
    clamp to the first / last shard). *)

val parts : t -> klo:int -> khi:int -> (int * int * int) list
(** Decompose the half-open key interval [\[klo, khi)] into per-shard
    pieces [(shard, klo', khi')] with [klo' < khi'], in shard order.
    The pieces are disjoint and their union is
    [\[klo, khi) ∩ \[0, max_key)]; an empty interval yields []. *)

val boundaries : t -> int list
(** The interior split points, [shards - 1] of them. *)

val pp : Format.formatter -> t -> unit
