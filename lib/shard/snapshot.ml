type stat = {
  watermark : int;
  now : int;
  alive : int;
  pages : int;
  batches : int;
  acked : int;
  wal_syncs : int;
  health : Durable.health;
  io : Telemetry.Io_stats.snapshot;
  published_ns : int64;
}

let zero =
  {
    watermark = 0;
    now = 0;
    alive = 0;
    pages = 0;
    batches = 0;
    acked = 0;
    wal_syncs = 0;
    health = Durable.Healthy;
    io = Telemetry.Io_stats.zero;
    published_ns = 0L;
  }

type t = stat Atomic.t

(* Publication stamps the monotonic clock itself, so snapshot age (now −
   published_ns) is measured at a single site and cannot be forgotten by
   a caller assembling the stat. *)
let create s = Atomic.make { s with published_ns = Telemetry.Tracer.now_ns () }
let publish t s = Atomic.set t { s with published_ns = Telemetry.Tracer.now_ns () }
let read t = Atomic.get t

let pp_stat ppf s =
  Format.fprintf ppf
    "watermark=%d now=%d alive=%d pages=%d batches=%d acked=%d wal_syncs=%d health=%a"
    s.watermark s.now s.alive s.pages s.batches s.acked s.wal_syncs
    Durable.pp_health s.health
