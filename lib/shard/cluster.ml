module E = Storage.Storage_error
module Io_stats = Telemetry.Io_stats
module Phases = Telemetry.Phases
module Tracer = Telemetry.Tracer

type config = {
  shards : int;
  readers : int;
  max_batch : int;
  mailbox_capacity : int;
  sim_io_ns : int;
}

let default_config =
  { shards = 2; readers = 0; max_batch = 64; mailbox_capacity = 1024; sim_io_ns = 0 }

type outcome = Applied | Rejected of string | Failed of E.t
type query_error = Bad_query of string | Io of E.t

(* Writes carry the request's phase cell across the domain hop: exactly
   one writer domain touches it, sequenced by the mailbox on the way in
   and the completion queue on the way out, so there is no concurrent
   mutation.  Scatter queries may fan one request out to several writer
   domains at once, so they carry only the trace id (for span
   correlation); their phase charging stays on the main domain. *)
type wmsg =
  | W_write of Op.t * Phases.cell option * int64 option * (outcome -> unit)
  | W_query of {
      klo : int;
      khi : int;
      tlo : int;
      thi : int;
      trace : int64 option;
      reply : (int * int, query_error) result -> unit;
    }
  | W_checkpoint of ((unit, E.t) result -> unit)

type rmsg =
  | R_apply of { shard : int; ops : Op.t list }
  | R_query of {
      klo : int;
      khi : int;
      tlo : int;
      thi : int;
      cell : Phases.cell option;
      trace : int64 option;
      reply : (int * int, query_error) result -> unit;
    }

(* --- Completion queue ----------------------------------------------------------- *)

(* Domains hand results back as thunks; the main domain runs them from
   [drain].  A self-pipe makes pending completions visible to the event
   loop's [select]; [signaled] keeps it to one byte in flight. *)
type completions = {
  cm : Mutex.t;
  cq : (unit -> unit) Queue.t;
  mutable signaled : bool;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
}

let completions_create () =
  let wake_r, wake_w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  { cm = Mutex.create (); cq = Queue.create (); signaled = false; wake_r; wake_w }

let wake_byte = Bytes.make 1 '!'

let post c f =
  Mutex.lock c.cm;
  Queue.add f c.cq;
  let need_wake = not c.signaled in
  c.signaled <- true;
  Mutex.unlock c.cm;
  if need_wake then
    try ignore (Unix.write c.wake_w wake_byte 0 1)
    with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EPIPE), _, _) -> ()

let completions_drain c =
  Mutex.lock c.cm;
  let ready = Queue.create () in
  Queue.transfer c.cq ready;
  c.signaled <- false;
  Mutex.unlock c.cm;
  (let junk = Bytes.create 64 in
   try
     while Unix.read c.wake_r junk 0 64 > 0 do
       ()
     done
   with Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ());
  let n = Queue.length ready in
  Queue.iter (fun f -> f ()) ready;
  n

(* --- The cluster ---------------------------------------------------------------- *)

type shard_info = {
  shard : int;
  klo : int;
  khi : int;
  stat : Snapshot.stat;
  queue : int;
  reader_watermark : int;
}

type t = {
  cfg : config;
  tel : Tracer.t;
  router : Router.t;
  writers : wmsg Mailbox.t array;
  readers : rmsg Mailbox.t array;
  published : Snapshot.t array;
  reader_marks : int Atomic.t array array;  (* .(reader).(shard) *)
  shard_io : Io_stats.t array;
  comp : completions;
  recovery_ : (int * Durable.recovery_report) array;
  mutable writer_domains : unit Domain.t list;
  mutable reader_domains : unit Domain.t list;
  mutable next_reader : int;
  mutable outstanding_ : int;
  mutable pending_writes_ : int;
  mutable stopped : bool;
}

let shard_path path i = Printf.sprintf "%s.s%d" path i

let sim_sleep t touches =
  if t.cfg.sim_io_ns > 0 && touches > 0 then
    Unix.sleepf (float_of_int (t.cfg.sim_io_ns * touches) /. 1e9)

let worst_health a b =
  let rank = function Durable.Healthy -> 0 | Durable.Degraded -> 1 | Durable.Read_only -> 2 in
  if rank a >= rank b then a else b

let stat_of_engine eng io =
  let w = Durable.warehouse eng in
  {
    Snapshot.watermark = Rta.n_updates w;
    now = Rta.now w;
    alive = Rta.alive_count w;
    pages = Rta.page_count w;
    batches = 0;
    acked = 0;
    wal_syncs = Wal.Stats.fsyncs (Durable.wal_stats eng);
    health = Durable.health eng;
    io = Io_stats.snapshot io;
    published_ns = 0L;  (* Snapshot.publish stamps the real clock *)
  }

(* --- Writer domain --------------------------------------------------------------- *)

let apply_one eng op =
  let r =
    match op with
    | Op.Insert { key; value; at } -> (
        try Ok (Durable.insert eng ~key ~value ~at) with Invalid_argument m -> Error m)
    | Op.Delete { key; at } -> (
        try Ok (Durable.delete eng ~key ~at) with Invalid_argument m -> Error m)
  in
  match r with
  | Ok (Ok ()) -> Applied  (* provisional: awaits the batch sync *)
  | Ok (Error e) -> Failed e
  | Error msg -> Rejected msg

let writer_loop t i eng =
  Tracer.set_thread_name (Printf.sprintf "shard-%d-writer" i);
  let mb = t.writers.(i) in
  let batches = ref 0 and acked = ref 0 in
  let publish () =
    Snapshot.publish t.published.(i)
      {
        (stat_of_engine eng t.shard_io.(i)) with
        Snapshot.batches = !batches;
        acked = !acked;
      }
  in
  let handle_query ~klo ~khi ~tlo ~thi ~trace reply =
    let before = Rta.page_touches (Durable.warehouse eng) in
    let res =
      Tracer.with_trace ~trace @@ fun () ->
      Tracer.with_span t.tel "shard.query"
        ~attrs:(fun () -> [ ("shard", Tracer.Int i) ])
      @@ fun () ->
      match Durable.sum_count eng ~klo ~khi ~tlo ~thi with
      | sc -> Ok sc
      | exception Invalid_argument m -> Error (Bad_query m)
      | exception E.Io e -> Error (Io e)
    in
    sim_sleep t (Rta.page_touches (Durable.warehouse eng) - before);
    post t.comp (fun () -> reply res)
  in
  (* Group commit, as in the PR-5 batcher: apply the batch (each op
     logged but not synced — the engine runs under [Wal.Never]), then one
     WAL sync covers them all.  A failed sync fails every provisionally
     applied op: they are in the log but their durability is unknown, and
     an ack is a durability claim. *)
  let commit_batch first_op first_cell first_trace first_k =
    let items = ref [ (first_op, first_cell, first_trace, first_k) ] and n = ref 1 in
    let stash = ref None in
    let continue = ref true in
    while !continue && !n < t.cfg.max_batch do
      match Mailbox.try_take mb with
      | Some (W_write (op, cell, trace, k)) ->
          items := (op, cell, trace, k) :: !items;
          incr n
      | Some other ->
          stash := Some other;
          continue := false
      | None -> continue := false
    done;
    let items = Array.of_list (List.rev !items) in
    Tracer.with_span t.tel "shard.batch"
      ~attrs:(fun () ->
        [ ("shard", Tracer.Int i); ("size", Tracer.Int (Array.length items)) ])
    @@ fun () ->
    let any_cell = Array.exists (fun (_, c, _, _) -> c <> None) items in
    (* Phase charging mirrors the single-engine batcher: queue wait ends
       at pickup; the batch loop minus the op's own engine-charged append
       and apply is batch build; one fsync is charged to every rider. *)
    let t_loop0 = if any_cell then Phases.now_ns () else 0L in
    if any_cell then
      Array.iter
        (fun (_, c, _, _) ->
          match c with Some c -> Phases.charge_mark c Phases.Queue_wait | None -> ())
        items;
    let outcomes =
      Array.map
        (fun (op, cell, trace, _) ->
          Durable.set_phase_cell eng cell;
          let o = Tracer.with_trace ~trace (fun () -> apply_one eng op) in
          Durable.set_phase_cell eng None;
          o)
        items
    in
    if any_cell then begin
      let loop_ns = Int64.sub (Phases.now_ns ()) t_loop0 in
      Array.iter
        (fun (_, c, _, _) ->
          match c with
          | None -> ()
          | Some c ->
              let own =
                Phases.phase_ns c Phases.Wal_append +. Phases.phase_ns c Phases.Apply
              in
              Phases.add c Phases.Batch_build
                ~ns:(Int64.of_float (max 0. (Int64.to_float loop_ns -. own))))
        items
    end;
    let applied = Array.exists (function Applied -> true | _ -> false) outcomes in
    (if applied then begin
       let t_sync0 = if any_cell then Phases.now_ns () else 0L in
       (match Durable.sync_wal eng with
       | Ok () -> ()
       | Error e ->
           Array.iteri
             (fun j o -> match o with Applied -> outcomes.(j) <- Failed e | _ -> ())
             outcomes);
       if any_cell then
         Array.iter
           (fun (_, c, _, _) ->
             match c with
             | Some c -> Phases.charge c Phases.Fsync ~since:t_sync0
             | None -> ())
           items
     end);
    incr batches;
    let applied_ops = ref [] in
    Array.iteri
      (fun j (op, _, _, _) ->
        match outcomes.(j) with
        | Applied ->
            incr acked;
            applied_ops := op :: !applied_ops
        | _ -> ())
      items;
    let applied_ops = List.rev !applied_ops in
    (* Broadcast before acknowledging: a query submitted after the ack is
       observed lands behind this batch in every reader's FIFO. *)
    if applied_ops <> [] then
      Array.iter
        (fun rmb -> ignore (Mailbox.put rmb (R_apply { shard = i; ops = applied_ops })))
        t.readers;
    publish ();
    Array.iteri
      (fun j (_, _, _, k) ->
        let o = outcomes.(j) in
        post t.comp (fun () -> k o))
      items;
    !stash
  in
  let rec loop next =
    match next with
    | None -> ()
    | Some (W_write (op, cell, trace, k)) -> loop_step (commit_batch op cell trace k)
    | Some (W_query { klo; khi; tlo; thi; trace; reply }) ->
        handle_query ~klo ~khi ~tlo ~thi ~trace reply;
        loop_step None
    | Some (W_checkpoint k) ->
        let res = Durable.checkpoint eng in
        publish ();
        post t.comp (fun () -> k res);
        loop_step None
  and loop_step stash =
    match stash with Some _ -> loop stash | None -> loop (Mailbox.take mb)
  in
  loop (Mailbox.take mb);
  publish ();
  Durable.close eng

(* --- Reader domain --------------------------------------------------------------- *)

let reader_loop t r wh =
  Tracer.set_thread_name (Printf.sprintf "reader-%d" r);
  let mb = t.readers.(r) in
  let rec go () =
    match Mailbox.take mb with
    | None -> ()
    | Some (R_apply { shard; ops }) ->
        List.iter (fun op -> Warehouse.apply_to wh ~shard op) ops;
        Atomic.set t.reader_marks.(r).(shard) (Warehouse.watermark wh shard);
        go ()
    | Some (R_query { klo; khi; tlo; thi; cell; trace; reply }) ->
        (* The whole query runs on this one reader domain, so its phase
           cell crosses exactly one domain hop — same safety argument as
           a write's cell in the writer loop. *)
        (match cell with
        | Some c -> Phases.charge_mark c Phases.Queue_wait
        | None -> ());
        let before = Warehouse.page_touches wh in
        let t0 = match cell with Some _ -> Phases.now_ns () | None -> 0L in
        let res =
          Tracer.with_trace ~trace @@ fun () ->
          Tracer.with_span t.tel "reader.query"
            ~attrs:(fun () -> [ ("reader", Tracer.Int r) ])
          @@ fun () ->
          match Warehouse.sum_count wh ~klo ~khi ~tlo ~thi with
          | sc -> Ok sc
          | exception Invalid_argument m -> Error (Bad_query m)
        in
        (match cell with
        | Some c -> Phases.charge c Phases.Apply ~since:t0
        | None -> ());
        sim_sleep t (Warehouse.page_touches wh - before);
        post t.comp (fun () -> reply res);
        go ()
  in
  go ()

(* --- Construction ---------------------------------------------------------------- *)

(* Deep-copy a recovered warehouse through an in-memory vfs: the replica
   shares no mutable state with the engine, so the reader domain owns it
   outright. *)
let copy_warehouse ?pool_capacity rta =
  let fs = Storage.Vfs.Memory.create () in
  let vfs = Storage.Vfs.Memory.vfs fs in
  Rta.save ~vfs rta ~path:"replica";
  Rta.load ?pool_capacity ~vfs ~path:"replica" ()

let create ?(config = default_config) ?(telemetry = Tracer.noop) ?engine_config
    ?pool_capacity ?checkpoint_every ?boundaries ?store ?arena_backing ~max_key
    ~path () =
  if config.shards < 1 || config.shards > 64 then
    invalid_arg "Cluster.create: shards must be in [1, 64]";
  if config.readers < 0 || config.readers > 64 then
    invalid_arg "Cluster.create: readers must be in [0, 64]";
  if config.max_batch < 1 then invalid_arg "Cluster.create: max_batch must be >= 1";
  let router = Router.create ?boundaries ~shards:config.shards ~max_key () in
  let shard_io = Array.init config.shards (fun _ -> Io_stats.create ()) in
  let engines =
    Array.init config.shards (fun i ->
        Durable.open_ ?config:engine_config ?pool_capacity ?checkpoint_every
          ?store ?arena_backing ~stats:shard_io.(i) ~sync_policy:Wal.Never
          ~max_key ~telemetry ~path:(shard_path path i) ())
  in
  let recovery_ =
    Array.mapi (fun i eng -> (i, Durable.recovery_report eng)) engines
  in
  let published =
    Array.mapi (fun i eng -> Snapshot.create (stat_of_engine eng shard_io.(i))) engines
  in
  let reader_marks =
    Array.init config.readers (fun _ ->
        Array.init config.shards (fun i ->
            Atomic.make (Rta.n_updates (Durable.warehouse engines.(i)))))
  in
  let t =
    {
      cfg = config;
      tel = telemetry;
      router;
      writers =
        Array.init config.shards (fun _ ->
            Mailbox.create ~capacity:config.mailbox_capacity ());
      readers =
        Array.init config.readers (fun _ ->
            Mailbox.create ~capacity:config.mailbox_capacity ());
      published;
      reader_marks;
      shard_io;
      comp = completions_create ();
      recovery_;
      writer_domains = [];
      reader_domains = [];
      next_reader = 0;
      outstanding_ = 0;
      pending_writes_ = 0;
      stopped = false;
    }
  in
  (* Replicas are seeded before the writers spawn, so every reader starts
     at exactly the recovered watermark and the broadcasts continue from
     there. *)
  let reader_warehouses =
    Array.init config.readers (fun _ ->
        Warehouse.of_replicas ~router
          (Array.map (fun eng -> copy_warehouse ?pool_capacity (Durable.warehouse eng)) engines))
  in
  t.writer_domains <-
    List.init config.shards (fun i ->
        Domain.spawn (fun () -> writer_loop t i engines.(i)));
  t.reader_domains <-
    List.init config.readers (fun r ->
        Domain.spawn (fun () -> reader_loop t r reader_warehouses.(r)));
  t

let router t = t.router
let config t = t.cfg
let recovery t = t.recovery_
let wake_fd t = t.comp.wake_r
let drain t = completions_drain t.comp
let outstanding t = t.outstanding_
let pending_writes t = t.pending_writes_

(* --- Submission (main domain) ----------------------------------------------------- *)

let submit_write t ?cell ?trace op k =
  t.outstanding_ <- t.outstanding_ + 1;
  t.pending_writes_ <- t.pending_writes_ + 1;
  let k' o =
    t.outstanding_ <- t.outstanding_ - 1;
    t.pending_writes_ <- t.pending_writes_ - 1;
    k o
  in
  (match cell with Some c -> Phases.mark c | None -> ());
  let s = Router.shard_of_key t.router (Op.key op) in
  if not (Mailbox.put t.writers.(s) (W_write (op, cell, trace, k'))) then
    k' (Rejected "cluster is shut down")

let closed_query_reply reply = reply (Error (Bad_query "cluster is shut down"))

let submit_query t ?cell ?trace ~klo ~khi ~tlo ~thi reply =
  if Array.length t.readers > 0 then begin
    t.outstanding_ <- t.outstanding_ + 1;
    let reply' res =
      t.outstanding_ <- t.outstanding_ - 1;
      reply res
    in
    (match cell with Some c -> Phases.mark c | None -> ());
    let r = t.next_reader in
    t.next_reader <- (r + 1) mod Array.length t.readers;
    if
      not
        (Mailbox.put t.readers.(r)
           (R_query { klo; khi; tlo; thi; cell; trace; reply = reply' }))
    then closed_query_reply reply'
  end
  else begin
    match Plan.scatter t.router ~klo ~khi with
    | [] -> reply (Ok (0, 0))
    | parts ->
        t.outstanding_ <- t.outstanding_ + 1;
        (* The part replies all run on the main domain (from [drain]), so
           the gather state needs no lock.  Several writer domains may
           serve parts of this one query concurrently, so the phase cell
           stays here: the whole scatter-gather round trip is charged as
           the query's apply phase from the main domain. *)
        (match cell with Some c -> Phases.mark c | None -> ());
        let remaining = ref (List.length parts) in
        let sum = ref 0 and count = ref 0 in
        let first_err = ref None in
        let finish_part res =
          (match res with
          | Ok (s, c) ->
              sum := !sum + s;
              count := !count + c
          | Error e -> if !first_err = None then first_err := Some e);
          decr remaining;
          if !remaining = 0 then begin
            t.outstanding_ <- t.outstanding_ - 1;
            (match cell with
            | Some c -> Phases.charge_mark c Phases.Apply
            | None -> ());
            match !first_err with
            | None -> reply (Ok (!sum, !count))
            | Some e -> reply (Error e)
          end
        in
        List.iter
          (fun { Plan.shard; klo; khi } ->
            if
              not
                (Mailbox.put t.writers.(shard)
                   (W_query { klo; khi; tlo; thi; trace; reply = finish_part }))
            then closed_query_reply finish_part)
          parts
  end

let submit_checkpoint t k =
  t.outstanding_ <- t.outstanding_ + 1;
  let n = Array.length t.writers in
  let remaining = ref n in
  let first_err = ref None in
  let finish res =
    (match res with
    | Ok () -> ()
    | Error e -> if !first_err = None then first_err := Some e);
    decr remaining;
    if !remaining = 0 then begin
      t.outstanding_ <- t.outstanding_ - 1;
      match !first_err with None -> k (Ok ()) | Some e -> k (Error e)
    end
  in
  Array.iter
    (fun mb ->
      if not (Mailbox.put mb (W_checkpoint finish)) then
        finish
          (Error
             (E.v ~detail:"cluster is shut down" ~op:E.Fsync ~path:"" (E.Errno "ESHUTDOWN"))))
    t.writers

let await t =
  while t.outstanding_ > 0 do
    (match Unix.select [ t.comp.wake_r ] [] [] 0.05 with
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
    ignore (drain t)
  done

(* --- Observation ------------------------------------------------------------------ *)

let shard_infos t =
  List.init (Array.length t.writers) (fun i ->
      let klo, khi = Router.range t.router i in
      let stat = Snapshot.read t.published.(i) in
      let reader_watermark =
        if Array.length t.reader_marks = 0 then stat.Snapshot.watermark
        else
          Array.fold_left
            (fun acc marks -> min acc (Atomic.get marks.(i)))
            max_int t.reader_marks
      in
      { shard = i; klo; khi; stat; queue = Mailbox.length t.writers.(i); reader_watermark })

let totals t =
  Array.fold_left
    (fun acc cell ->
      let s = Snapshot.read cell in
      {
        Snapshot.watermark = acc.Snapshot.watermark + s.Snapshot.watermark;
        now = max acc.Snapshot.now s.Snapshot.now;
        alive = acc.Snapshot.alive + s.Snapshot.alive;
        pages = acc.Snapshot.pages + s.Snapshot.pages;
        batches = acc.Snapshot.batches + s.Snapshot.batches;
        acked = acc.Snapshot.acked + s.Snapshot.acked;
        wal_syncs = acc.Snapshot.wal_syncs + s.Snapshot.wal_syncs;
        health = worst_health acc.Snapshot.health s.Snapshot.health;
        io = Io_stats.add acc.Snapshot.io s.Snapshot.io;
        (* Oldest publication across shards: the age of the staleest
           snapshot bounds the whole cluster's. *)
        published_ns =
          (if acc.Snapshot.published_ns = 0L then s.Snapshot.published_ns
           else if s.Snapshot.published_ns = 0L then acc.Snapshot.published_ns
           else Int64.min acc.Snapshot.published_ns s.Snapshot.published_ns);
      })
    Snapshot.zero t.published

let io_totals t = Io_stats.merge (Array.to_list (Array.map Io_stats.snapshot t.shard_io))

let health t = (totals t).Snapshot.health

(* --- Shutdown --------------------------------------------------------------------- *)

let shutdown t =
  if not t.stopped then begin
    t.stopped <- true;
    (* Writers first: they drain their mailboxes (acking everything in
       flight), publish a final watermark, close their engines.  Readers
       stay up meanwhile so a writer blocked broadcasting into a full
       reader mailbox always makes progress. *)
    Array.iter Mailbox.close t.writers;
    List.iter Domain.join t.writer_domains;
    Array.iter Mailbox.close t.readers;
    List.iter Domain.join t.reader_domains;
    ignore (drain t);
    (try Unix.close t.comp.wake_w with Unix.Unix_error _ -> ());
    (try Unix.close t.comp.wake_r with Unix.Unix_error _ -> ())
  end
