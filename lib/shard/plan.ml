type part = { shard : int; klo : int; khi : int }

let scatter router ~klo ~khi =
  List.map (fun (shard, klo, khi) -> { shard; klo; khi }) (Router.parts router ~klo ~khi)

let merge pairs =
  List.fold_left (fun (s, c) (s', c') -> (s + s', c + c')) (0, 0) pairs

let avg ~sum ~count =
  if count = 0 then None else Some (float_of_int sum /. float_of_int count)

let query router f ~klo ~khi =
  merge
    (List.map
       (fun { shard; klo; khi } -> f ~shard ~klo ~khi)
       (scatter router ~klo ~khi))
