type 'a t = {
  m : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  q : 'a Queue.t;
  capacity : int;
  len : int Atomic.t;
  mutable closed : bool;
}

let create ~capacity () =
  if capacity < 1 then invalid_arg "Mailbox.create: capacity must be >= 1";
  {
    m = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    q = Queue.create ();
    capacity;
    len = Atomic.make 0;
    closed = false;
  }

let put t v =
  Mutex.lock t.m;
  while (not t.closed) && Queue.length t.q >= t.capacity do
    Condition.wait t.not_full t.m
  done;
  let accepted = not t.closed in
  if accepted then begin
    Queue.add v t.q;
    Atomic.incr t.len;
    Condition.signal t.not_empty
  end;
  Mutex.unlock t.m;
  accepted

let take t =
  Mutex.lock t.m;
  while Queue.is_empty t.q && not t.closed do
    Condition.wait t.not_empty t.m
  done;
  let v = Queue.take_opt t.q in
  if Option.is_some v then begin
    Atomic.decr t.len;
    Condition.signal t.not_full
  end;
  Mutex.unlock t.m;
  v

let try_take t =
  Mutex.lock t.m;
  let v = Queue.take_opt t.q in
  if Option.is_some v then begin
    Atomic.decr t.len;
    Condition.signal t.not_full
  end;
  Mutex.unlock t.m;
  v

let length t = Atomic.get t.len

let close t =
  Mutex.lock t.m;
  if not t.closed then begin
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full
  end;
  Mutex.unlock t.m

let is_closed t =
  Mutex.lock t.m;
  let c = t.closed in
  Mutex.unlock t.m;
  c
