type t =
  | Insert of { key : int; value : int; at : int }
  | Delete of { key : int; at : int }

let key = function Insert { key; _ } | Delete { key; _ } -> key
let at = function Insert { at; _ } | Delete { at; _ } -> at

let pp ppf = function
  | Insert { key; value; at } ->
      Format.fprintf ppf "insert key=%d value=%d at=%d" key value at
  | Delete { key; at } -> Format.fprintf ppf "delete key=%d at=%d" key at
