(** The snapshot publication protocol.

    Each writer domain, after every committed batch (ops applied {e and}
    the shard's WAL synced), publishes one immutable {!stat} record into
    its shard's cell with a single [Atomic.set].  Any domain may read
    the cell at any time with [Atomic.get] and obtains a consistent
    point-in-time view — the record is immutable, so there are no torn
    reads and no locks on the read side.

    The [watermark] is the shard's version number: the count of updates
    applied to the shard engine over its life (recovery included).  It
    is monotone, and because it is published {e after} the batch's WAL
    sync, any watermark a reader observes counts only durable updates.
    Reader domains publish their own per-shard applied watermark the
    same way, so the gap between a writer's published watermark and a
    reader's is exactly the replication lag in updates. *)

type stat = {
  watermark : int;  (** Durable updates applied over the shard's life. *)
  now : int;  (** The shard clock: last transaction time applied. *)
  alive : int;
  pages : int;
  batches : int;  (** Group commits on this shard. *)
  acked : int;  (** Writes acknowledged through group commit. *)
  wal_syncs : int;
  health : Durable.health;
  io : Telemetry.Io_stats.snapshot;
  published_ns : int64;
      (** Monotonic clock at publication — stamped by {!create}/
          {!publish} themselves, so [now_ns () - published_ns] is the
          snapshot's age. *)
}

val zero : stat

type t
(** One shard's publication cell. *)

val create : stat -> t
val publish : t -> stat -> unit
val read : t -> stat

val pp_stat : Format.formatter -> stat -> unit
