(** The routed write operations — the shard layer's copy of the wire /
    batcher write vocabulary, so [lib/shard] does not depend on
    [lib/server]. *)

type t =
  | Insert of { key : int; value : int; at : int }
  | Delete of { key : int; at : int }

val key : t -> int
(** The routing key. *)

val at : t -> int
val pp : Format.formatter -> t -> unit
