type t = { router : Router.t; replicas : Rta.t array }

let create ?config ?pool_capacity ~router () =
  let max_key = Router.max_key router in
  {
    router;
    replicas =
      Array.init (Router.shards router) (fun _ ->
          Rta.create ?config ?pool_capacity ~max_key ());
  }

let of_replicas ~router replicas =
  if Array.length replicas <> Router.shards router then
    invalid_arg "Warehouse.of_replicas: shard count mismatch";
  { router; replicas }

let router t = t.router
let replica t i = t.replicas.(i)

let apply_to t ~shard op =
  let r = t.replicas.(shard) in
  match op with
  | Op.Insert { key; value; at } -> Rta.insert r ~key ~value ~at
  | Op.Delete { key; at } -> Rta.delete r ~key ~at

let apply t op = apply_to t ~shard:(Router.shard_of_key t.router (Op.key op)) op

let watermark t i = Rta.n_updates t.replicas.(i)
let watermarks t = Array.map Rta.n_updates t.replicas

let sum_count t ~klo ~khi ~tlo ~thi =
  Plan.query t.router
    (fun ~shard ~klo ~khi -> Rta.sum_count t.replicas.(shard) ~klo ~khi ~tlo ~thi)
    ~klo ~khi

let avg t ~klo ~khi ~tlo ~thi =
  let sum, count = sum_count t ~klo ~khi ~tlo ~thi in
  Plan.avg ~sum ~count

let page_touches t =
  Array.fold_left (fun acc r -> acc + Rta.page_touches r) 0 t.replicas
