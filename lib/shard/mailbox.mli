(** Bounded multi-producer / multi-consumer mailbox on stdlib
    [Mutex]/[Condition] — the hand-rolled channel the cluster uses
    instead of Domainslib (which the toolchain does not ship).

    FIFO.  [put] blocks while the mailbox is full, [take] blocks while
    it is empty; {!close} wakes every waiter and turns the mailbox into
    a drain: pending messages are still taken, then [take] returns
    [None].  {!length} reads an [Atomic] counter so the event loop can
    observe queue depth without taking the lock. *)

type 'a t

val create : capacity:int -> unit -> 'a t
(** @raise Invalid_argument if [capacity < 1]. *)

val put : 'a t -> 'a -> bool
(** Enqueue, blocking while full.  Returns [false] (message dropped) if
    the mailbox is closed. *)

val take : 'a t -> 'a option
(** Dequeue, blocking while empty.  [None] once closed {e and}
    drained. *)

val try_take : 'a t -> 'a option
(** Non-blocking dequeue; [None] when nothing is immediately ready
    (empty or closed-and-drained). *)

val length : 'a t -> int
(** Current queue length, without taking the lock. *)

val close : 'a t -> unit
(** Idempotent.  Producers start getting [false]; consumers drain what
    remains, then get [None]. *)

val is_closed : 'a t -> bool
