type t = {
  max_key : int;
  starts : int array;  (* starts.(0) = 0, strictly increasing, < max_key *)
}

let create ?boundaries ~shards ~max_key () =
  if max_key < 1 then invalid_arg "Router.create: max_key must be >= 1";
  if shards < 1 then invalid_arg "Router.create: shards must be >= 1";
  if shards > max_key then
    invalid_arg "Router.create: more shards than keys in the domain";
  let starts =
    match boundaries with
    | None ->
        (* Even split with the remainder spread over the first shards, so
           ranges differ in size by at most one key. *)
        let q = max_key / shards and r = max_key mod shards in
        Array.init shards (fun i -> (i * q) + min i r)
    | Some bs ->
        if List.length bs <> shards - 1 then
          invalid_arg
            (Printf.sprintf
               "Router.create: %d boundaries for %d shards (need shards - 1)"
               (List.length bs) shards);
        let starts = Array.of_list (0 :: bs) in
        Array.iteri
          (fun i b ->
            if i > 0 && (b <= starts.(i - 1) || b >= max_key) then
              invalid_arg
                (Printf.sprintf
                   "Router.create: boundary %d not strictly increasing inside (0, %d)"
                   b max_key))
          starts;
        starts
  in
  { max_key; starts }

let shards t = Array.length t.starts
let max_key t = t.max_key
let start t i = t.starts.(i)

let range t i =
  let n = Array.length t.starts in
  (t.starts.(i), if i = n - 1 then t.max_key else t.starts.(i + 1))

(* Greatest [i] with [starts.(i) <= key]. *)
let shard_of_key t key =
  if key <= 0 then 0
  else begin
    let lo = ref 0 and hi = ref (Array.length t.starts - 1) in
    while !lo < !hi do
      let mid = (!lo + !hi + 1) / 2 in
      if t.starts.(mid) <= key then lo := mid else hi := mid - 1
    done;
    !lo
  end

let parts t ~klo ~khi =
  let klo = max klo 0 and khi = min khi t.max_key in
  if klo >= khi then []
  else begin
    let first = shard_of_key t klo and last = shard_of_key t (khi - 1) in
    List.init
      (last - first + 1)
      (fun j ->
        let i = first + j in
        let lo, hi = range t i in
        (i, max klo lo, min khi hi))
  end

let boundaries t = List.tl (Array.to_list t.starts)

let pp ppf t =
  Format.fprintf ppf "@[<h>%d shards over [0,%d):" (shards t) t.max_key;
  Array.iteri
    (fun i _ ->
      let lo, hi = range t i in
      Format.fprintf ppf " [%d,%d)" lo hi)
    t.starts;
  Format.fprintf ppf "@]"
