(** The multicore sharded serving engine: one writer domain per key
    shard, optional reader domains with lock-free snapshot replicas, and
    a scatter-gather front end for the single-threaded event loop.

    {2 Topology}

    {v
                      main domain (event loop)
              submit_write / submit_query / drain
                 |                        |
        writer mailboxes           reader mailboxes
         (one per shard)           (one per reader)
                 |                        |
     +-----------+-----------+      +-----+------+
     | writer 0  | writer 1  |      | reader 0 ..|
     | Durable.s0| Durable.s1| ---> | Rta replica|
     | WAL + grp | WAL + grp | cast | per shard  |
     | commit    | commit    |      | (no locks) |
     +-----------+-----------+      +------------+
            |   publish Snapshot.stat   |  publish applied watermark
            +------> Atomic cells <-----+
    v}

    Each writer owns its shard's {!Durable} engine and WAL outright — no
    other domain ever touches them — and runs the PR-5 group commit:
    drain a batch of writes from its mailbox, apply them (logged,
    unsynced), issue {e one} WAL sync, then acknowledge.  After the sync
    it broadcasts the batch's applied ops to every reader mailbox and
    publishes a fresh {!Snapshot.stat} (the version watermark).  Reader
    domains apply the broadcasts to private in-memory {!Warehouse}
    replicas and answer queries from them with no locks at all — the
    MVSBT's published versions are immutable, so a replica at watermark
    [W] is a true snapshot.

    {2 Ordering (read-your-writes)}

    A writer enqueues the reader broadcast {e before} posting the write's
    completion, and mailboxes are FIFO — so any query submitted after a
    write's acknowledgement was observed lands behind that write's
    broadcast in every reader's queue and sees it applied.  Queries
    submitted concurrently with writes may read an older watermark; each
    per-shard replica is always a consistent committed prefix
    (version-skew across shards is allowed and tested).

    {2 Completions}

    Domains never touch event-loop state.  Every submission carries a
    callback; the owning domain computes the result and posts a thunk to
    the completion queue, waking the event loop through {!wake_fd} (a
    self-pipe added to its [select] read set).  The loop calls {!drain}
    to run completed thunks — on the main domain, so callbacks may touch
    connection and admission state freely.

    With [readers = 0] queries scatter to the {e writer} domains (which
    interleave them with batches); with [readers > 0] each query goes
    whole to one reader, round-robin, and is decomposed there. *)

module E := Storage.Storage_error

type config = {
  shards : int;
  readers : int;
  max_batch : int;  (** Writes per group commit, per shard. *)
  mailbox_capacity : int;
  sim_io_ns : int;
      (** Simulated device latency charged per logical page touch on the
          query path — extends the repo's I/O cost-model convention to
          wall clock, so reader scaling is observable even on a
          single-core host (queries overlap their simulated I/O waits).
          [0] (the default) disables it. *)
}

val default_config : config
(** [{ shards = 2; readers = 0; max_batch = 64; mailbox_capacity = 1024;
      sim_io_ns = 0 }] *)

type outcome = Applied | Rejected of string | Failed of E.t
(** Per-write result, exactly the {!Batcher} contract: [Applied] means
    logged, applied, and covered by a returned WAL sync on its shard. *)

type query_error =
  | Bad_query of string  (** Precondition violation. *)
  | Io of E.t

type t

val create :
  ?config:config ->
  ?telemetry:Telemetry.Tracer.t ->
  ?engine_config:Mvsbt.config ->
  ?pool_capacity:int ->
  ?checkpoint_every:int ->
  ?boundaries:int list ->
  ?store:Storage.Store_kind.t ->
  ?arena_backing:[ `Auto | `Map | `Buffered ] ->
  max_key:int ->
  path:string ->
  unit ->
  t
(** Open (recovering) one {!Durable} engine per shard under
    [<path>.s<i>], seed each reader's replicas from the recovered
    state, and spawn the domains.  [store]/[arena_backing] select each
    shard engine's page backend, as in {!Durable.open_} (reader replicas
    stay in memory — they are throwaway copies).  Engines run under [Wal.Never] — the
    per-shard group commit owns the sync, as in {!Batcher}.  [telemetry]
    receives [shard.batch] / [shard.query] / [reader.query] spans from
    the worker domains; each domain registers a thread name with
    {!Telemetry.Tracer.set_thread_name} so Chrome exports label its
    lane.
    @raise Invalid_argument on a bad shard/reader count. *)

val router : t -> Router.t
val config : t -> config

val recovery : t -> (int * Durable.recovery_report) array
(** Per-shard recovery outcome from {!create}, for the serve banner. *)

(** {1 Submission — main domain only} *)

val submit_write :
  t ->
  ?cell:Telemetry.Phases.cell ->
  ?trace:int64 ->
  Op.t ->
  (outcome -> unit) ->
  unit
(** Route to the owning shard's writer.  The callback runs from a later
    {!drain}.  [cell] rides to the owning writer domain, which charges
    the request's queue wait, batch build, WAL append, fsync share, and
    tree apply to it; [trace] is re-installed as the ambient trace id
    around the engine apply so the shard's spans join the request's
    trace. *)

val submit_query :
  t ->
  ?cell:Telemetry.Phases.cell ->
  ?trace:int64 ->
  klo:int ->
  khi:int ->
  tlo:int ->
  thi:int ->
  ((int * int, query_error) result -> unit) ->
  unit
(** Scatter-gather SUM/COUNT over the rectangle; the callback receives
    the merged pair (AVG is sum/count client-side, as on the wire).
    With readers the cell rides to the one serving reader (queue wait +
    apply charged there); on the scatter path the whole round trip is
    charged as the apply phase from the main domain, because several
    writer domains may hold parts of one query concurrently. *)

val submit_checkpoint : t -> ((unit, E.t) result -> unit) -> unit
(** Checkpoint every shard; first error wins. *)

(** {1 The completion loop} *)

val wake_fd : t -> Unix.file_descr
(** Readable whenever completions are pending; add to [select]. *)

val drain : t -> int
(** Run pending completion thunks on the calling (main) domain; returns
    how many ran. *)

val outstanding : t -> int
(** Submissions whose callbacks have not run yet. *)

val pending_writes : t -> int
(** Outstanding writes — the cluster's admission queue depth. *)

val await : t -> unit
(** Drain until [outstanding t = 0] (blocking on {!wake_fd}) — for
    direct drivers (bench, tests) with no event loop. *)

(** {1 Observation — lock-free, any time} *)

type shard_info = {
  shard : int;
  klo : int;
  khi : int;  (** The shard's half-open key range. *)
  stat : Snapshot.stat;  (** The writer's latest publication. *)
  queue : int;  (** Writer mailbox depth. *)
  reader_watermark : int;
      (** Min applied watermark across readers — how far snapshot serving
          lags the committed watermark.  Equals [stat.watermark] when
          there are no readers. *)
}

val shard_infos : t -> shard_info list

val totals : t -> Snapshot.stat
(** Per-shard stats merged: counters summed, [now] maxed, [health] the
    worst across shards. *)

val io_totals : t -> Telemetry.Io_stats.snapshot
(** Live whole-system I/O: the per-shard engine counters merged through
    {!Telemetry.Io_stats.merge} (domain-safe: the counters are atomic). *)

val health : t -> Durable.health
(** Worst shard health. *)

val shutdown : t -> unit
(** Close the writer mailboxes (they drain), join the writers (each
    closes its engine), then readers; run remaining completions.
    Idempotent. *)
