(** The scatter-gather query planner.

    The paper's Theorem 1 reduces a range-temporal aggregate over
    [\[klo, khi) x \[tlo, thi)] to six dominance-sum point queries; both
    SUM and COUNT are therefore dominance sums, and a dominance sum over
    a disjoint union of key ranges is the sum of the per-range sums.  So
    a query against a sharded warehouse is planned as:

    + {e scatter}: split the key interval at the {!Router} boundaries —
      a point query touches exactly one shard, a range query the shards
      it overlaps;
    + per shard, answer the clipped rectangle from that shard's engine
      or replica;
    + {e gather}: add the per-shard [(sum, count)] pairs.  AVG is
      [sum / count] of the {e merged} pair — never an average of
      per-shard averages, which would weight shards wrongly. *)

type part = { shard : int; klo : int; khi : int }

val scatter : Router.t -> klo:int -> khi:int -> part list
(** The per-shard sub-rectangles (key dimension only — the time interval
    is common to all parts).  Empty for an empty key interval. *)

val merge : (int * int) list -> int * int
(** Sum the per-shard [(sum, count)] pairs. *)

val avg : sum:int -> count:int -> float option
(** [None] when [count = 0] — the rectangle is empty. *)

val query :
  Router.t ->
  (shard:int -> klo:int -> khi:int -> int * int) ->
  klo:int ->
  khi:int ->
  int * int
(** [query router f ~klo ~khi] scatters, applies [f] to each part, and
    merges — the whole plan for callers that can answer parts
    synchronously (reader domains, the single-threaded {!Warehouse}). *)
