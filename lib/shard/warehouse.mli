(** A sharded warehouse in one domain: a {!Router} plus one in-memory
    {!Rta} replica per shard.

    Two users:
    - each reader domain owns one of these as its private replica set,
      applying the committed-op broadcasts from the writer domains and
      answering snapshot queries from it without any locks;
    - the equivalence property tests drive one directly against the
      [lib/reference] oracle — random boundaries, boundary-straddling
      rectangles, version-skewed per-shard prefixes.

    Every replica spans the {e full} key domain (only its shard's keys
    are ever applied), so a clipped sub-rectangle query against a
    replica needs no key translation.  Per-shard watermarks are the
    replicas' own update counts; they may legitimately differ across
    shards (a version-skewed snapshot) — each shard is still a
    consistent prefix of its own committed history. *)

type t

val create :
  ?config:Mvsbt.config -> ?pool_capacity:int -> router:Router.t -> unit -> t
(** Fresh, empty replicas. *)

val of_replicas : router:Router.t -> Rta.t array -> t
(** Adopt pre-seeded replicas (one per shard, e.g. deep copies of the
    recovered shard engines).
    @raise Invalid_argument on a shard-count mismatch. *)

val router : t -> Router.t
val replica : t -> int -> Rta.t

val apply : t -> Op.t -> unit
(** Route by key and apply to the owning shard's replica.
    @raise Invalid_argument exactly as {!Rta.insert} / {!Rta.delete}. *)

val apply_to : t -> shard:int -> Op.t -> unit
(** Apply to a named shard — the broadcast path, where the writer
    already routed. *)

val watermark : t -> int -> int
(** Updates applied to shard [i]'s replica over its life. *)

val watermarks : t -> int array

val sum_count : t -> klo:int -> khi:int -> tlo:int -> thi:int -> int * int
(** Scatter over the router, answer each part from its replica, merge
    ({!Plan}). *)

val avg : t -> klo:int -> khi:int -> tlo:int -> thi:int -> float option

val page_touches : t -> int
(** Total logical page accesses across all replicas — the cost-model
    quantity the simulated-I/O query path charges for. *)
