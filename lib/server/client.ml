type endpoint = Unix_sock of string | Tcp of string * int

type t = {
  mutable fd : Unix.file_descr;
  mutable buf : bytes;
  mutable len : int;
  endpoint : endpoint option;  (* None: wrapped a caller-owned fd *)
  timeout : float option;
  backoff : float;
  mutable reconnects : int;
}

exception Connection_closed
exception Protocol_error of Wire.error
exception Timeout of string

let connect_fd ?timeout ep =
  let domain, addr =
    match ep with
    | Unix_sock path -> (Unix.PF_UNIX, Unix.ADDR_UNIX path)
    | Tcp (host, port) ->
        (Unix.PF_INET, Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     (match timeout with
     | None -> Unix.connect fd addr
     | Some tmo ->
         (* Non-blocking connect + select: a black-holed peer fails in
            [tmo] seconds instead of the kernel's minutes-long default. *)
         Unix.set_nonblock fd;
         (try Unix.connect fd addr
          with Unix.Unix_error ((Unix.EINPROGRESS | Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
            -> (
            match Unix.select [] [ fd ] [] tmo with
            | _, _ :: _, _ -> (
                match Unix.getsockopt_error fd with
                | None -> ()
                | Some e -> raise (Unix.Unix_error (e, "connect", "")))
            | _ -> raise (Timeout "connect")));
         Unix.clear_nonblock fd;
         (* Every subsequent blocking read/write inherits the bound. *)
         Unix.setsockopt_float fd Unix.SO_RCVTIMEO tmo;
         Unix.setsockopt_float fd Unix.SO_SNDTIMEO tmo)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  fd

let make ?timeout ?(backoff = 0.05) ?endpoint fd =
  { fd; buf = Bytes.create 8192; len = 0; endpoint; timeout; backoff; reconnects = 0 }

let connect_unix ?timeout ?backoff ~path () =
  let ep = Unix_sock path in
  make ?timeout ?backoff ~endpoint:ep (connect_fd ?timeout ep)

let connect_tcp ?timeout ?backoff ?(host = "127.0.0.1") ~port () =
  let ep = Tcp (host, port) in
  make ?timeout ?backoff ~endpoint:ep (connect_fd ?timeout ep)

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()
let fd t = t.fd
let reconnects t = t.reconnects

let reconnect t =
  match t.endpoint with
  | None -> raise Connection_closed
  | Some ep ->
      close t;
      Unix.sleepf t.backoff;
      t.fd <- connect_fd ?timeout:t.timeout ep;
      t.len <- 0;
      t.reconnects <- t.reconnects + 1

let send ?trace t req =
  (* Explicit [?trace] wins; otherwise inherit the ambient id (so a
     client used inside a [with_trace] extent propagates it for free). *)
  let trace =
    match trace with Some _ -> trace | None -> Telemetry.Tracer.current_trace ()
  in
  let b = Wire.encode_request ?trace req in
  let n = Bytes.length b in
  let rec go ~retried written =
    if written < n then
      match Unix.write t.fd b written (n - written) with
      | 0 -> raise Connection_closed
      | k -> go ~retried (written + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ~retried written
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          (* SO_SNDTIMEO expired: the peer stopped draining. *)
          raise (Timeout "send")
      | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
          (* Reconnect-with-backoff, once, and only when nothing of this
             request reached the old socket and no response is owed —
             re-sending anything else could double-apply a write. *)
          if written = 0 && t.len = 0 && (not retried) && t.endpoint <> None then begin
            reconnect t;
            go ~retried:true 0
          end
          else raise Connection_closed
  in
  go ~retried:false 0

let refill t =
  let chunk = 8192 in
  if Bytes.length t.buf - t.len < chunk then begin
    let nb = Bytes.create (max (t.len + chunk) (2 * Bytes.length t.buf)) in
    Bytes.blit t.buf 0 nb 0 t.len;
    t.buf <- nb
  end;
  match Unix.read t.fd t.buf t.len chunk with
  | 0 -> raise Connection_closed
  | n -> t.len <- t.len + n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      (* SO_RCVTIMEO expired with a response still owed. *)
      raise (Timeout "receive")
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Connection_closed

let rec recv t =
  match Wire.decode_response ~buf:t.buf ~pos:0 ~avail:t.len with
  | Wire.Complete (resp, used) ->
      Bytes.blit t.buf used t.buf 0 (t.len - used);
      t.len <- t.len - used;
      resp
  | Wire.Incomplete ->
      refill t;
      recv t
  | Wire.Fail e -> raise (Protocol_error e)

let call ?trace t req =
  send ?trace t req;
  recv t

let ping t = match call t Wire.Ping with Wire.Pong -> true | _ -> false
let insert t ~key ~value ~at = call t (Wire.Insert { key; value; at })
let delete t ~key ~at = call t (Wire.Delete { key; at })
let query t ~agg ~klo ~khi ~tlo ~thi = call t (Wire.Query { agg; klo; khi; tlo; thi })
let checkpoint t = call t Wire.Checkpoint
let stats t = match call t Wire.Stats with Wire.Stats_reply s -> Some s | _ -> None

let shard_stats t =
  match call t Wire.Shard_stats with Wire.Shard_stats_reply s -> Some s | _ -> None
let health t = match call t Wire.Health with Wire.Health_reply h -> Some h | _ -> None
let shutdown t = call t Wire.Shutdown

let replica_stats t =
  match call t Wire.Replica_stats with Wire.Replica_stats_reply s -> Some s | _ -> None

let promote t = call t Wire.Promote

let vacuum ?(max_pages_per_step = 0) t ~horizon =
  call t (Wire.Vacuum { horizon; max_pages_per_step })

let observe t =
  match call t Wire.Observe with Wire.Observe_reply s -> Some s | _ -> None
