type t = { fd : Unix.file_descr; mutable buf : bytes; mutable len : int }

exception Connection_closed
exception Protocol_error of Wire.error

let connect fd = { fd; buf = Bytes.create 8192; len = 0 }

let connect_unix ~path =
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_UNIX path)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect fd

let connect_tcp ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  connect fd

let close t = try Unix.close t.fd with Unix.Unix_error _ -> ()

let fd t = t.fd

let send t req =
  let b = Wire.encode_request req in
  let n = Bytes.length b in
  let written = ref 0 in
  while !written < n do
    match Unix.write t.fd b !written (n - !written) with
    | 0 -> raise Connection_closed
    | k -> written := !written + k
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
        raise Connection_closed
  done

let refill t =
  let chunk = 8192 in
  if Bytes.length t.buf - t.len < chunk then begin
    let nb = Bytes.create (max (t.len + chunk) (2 * Bytes.length t.buf)) in
    Bytes.blit t.buf 0 nb 0 t.len;
    t.buf <- nb
  end;
  match Unix.read t.fd t.buf t.len chunk with
  | 0 -> raise Connection_closed
  | n -> t.len <- t.len + n
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error (Unix.ECONNRESET, _, _) -> raise Connection_closed

let rec recv t =
  match Wire.decode_response ~buf:t.buf ~pos:0 ~avail:t.len with
  | Wire.Complete (resp, used) ->
      Bytes.blit t.buf used t.buf 0 (t.len - used);
      t.len <- t.len - used;
      resp
  | Wire.Incomplete ->
      refill t;
      recv t
  | Wire.Fail e -> raise (Protocol_error e)

let call t req =
  send t req;
  recv t

let ping t = match call t Wire.Ping with Wire.Pong -> true | _ -> false
let insert t ~key ~value ~at = call t (Wire.Insert { key; value; at })
let delete t ~key ~at = call t (Wire.Delete { key; at })
let query t ~agg ~klo ~khi ~tlo ~thi = call t (Wire.Query { agg; klo; khi; tlo; thi })
let checkpoint t = call t Wire.Checkpoint
let stats t = match call t Wire.Stats with Wire.Stats_reply s -> Some s | _ -> None

let shard_stats t =
  match call t Wire.Shard_stats with Wire.Shard_stats_reply s -> Some s | _ -> None
let health t = match call t Wire.Health with Wire.Health_reply h -> Some h | _ -> None
let shutdown t = call t Wire.Shutdown
