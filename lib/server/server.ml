module E = Storage.Storage_error
module Metrics = Telemetry.Metrics
module Tracer = Telemetry.Tracer
module Phases = Telemetry.Phases
module Json = Telemetry.Json

type config = {
  max_in_flight : int;
  max_queue_depth : int;
  max_batch : int;
  high_water : int;
  sim_io_ns : int;
}

let default_config =
  { max_in_flight = 1024; max_queue_depth = 256; max_batch = 64; high_water = 256 * 1024;
    sim_io_ns = 0 }

(* --- Connection state machine -------------------------------------------------- *)

(* Each connection accumulates raw bytes in [inbuf], owns an ordered queue
   of response [slots] (reserved at decode time, filled whenever the
   request completes — possibly out of completion order), and stages
   filled-prefix response bytes in [out] for non-blocking writes. *)

(* One reserved response.  [s_trace] echoes the request's v2 trace id on
   the response frame; [s_cell] is the request's phase vector, finished
   when the response bytes have actually reached the socket. *)
type slot = {
  mutable resp : bytes option;
  s_cell : Phases.cell option;
  s_trace : int64 option;
  mutable fill_ns : int64;  (* clock at fill, for the reply-flush phase *)
}

type conn = {
  fd : Unix.file_descr;
  id : int;
  mutable inbuf : bytes;
  mutable in_len : int;
  slots : slot Queue.t;
  mutable out : bytes;
  mutable out_pos : int;  (* written prefix of [out] *)
  mutable out_len : int;
  mutable staged_total : int;  (* bytes ever staged into [out] *)
  mutable sent_total : int;  (* bytes ever written to the socket *)
  flushes : (Phases.cell * int64 * int) Queue.t;
      (* (cell, fill_ns, staged_total watermark): the cell's response is
         fully on the socket once [sent_total] reaches the watermark —
         targets are recorded in staging order, so this stays FIFO. *)
  mutable close_after_flush : bool;
      (* EOF seen or protocol error: no more reads; close once every
         reserved slot has been filled and flushed. *)
  mutable dead : bool;
  mutable subscriber : bool;
      (* A replication subscription: the extension pushes frames to this
         connection out of band, and the backpressure read-pause does not
         apply (pausing reads would also pause the follower's acks). *)
}

type state = Accepting | Draining | Stopped

(* --- Extension hook -------------------------------------------------------------- *)

(* Replication (lib/replica) plugs into the loop without the server
   knowing its semantics: an extension claims the replication opcodes,
   a tick runs once per iteration (between group commit and response
   pump, so anything it fills is flushed the same step), watched fds
   join the select read set, and a close hook reclaims subscriber
   state.  A server with no extension answers the replication opcodes
   with a typed error. *)

type ext_ctx = {
  ext_conn : int;  (* connection id, stable for the connection's life *)
  ext_push : bytes -> unit;  (* stage pre-encoded frames out of band *)
  ext_pending : unit -> int;  (* unflushed output bytes (flow control) *)
}

type ext_outcome =
  | Ext_reply of Wire.response
  | Ext_subscribe of Wire.response
  | Ext_silent
  | Ext_pass

(* The data plane behind the event loop: either the PR-5 single-engine
   group-commit path, or the sharded cluster of writer/reader domains.
   The connection state machine, admission gate, and wire handling are
   identical for both. *)
type backend =
  | Single of { eng : Durable.t; bat : Batcher.t }
  | Sharded of Shard.Cluster.t

type t = {
  cfg : config;
  tel : Tracer.t;
  reg : Metrics.t;
  backend : backend;
  adm : Admission.t;
  listen_fd : Unix.file_descr;
  mutable conns : conn list;
  mutable state : state;
  mutable next_id : int;
  mutable requests : int;
  mutable extension : (ext_ctx -> Wire.request -> ext_outcome) option;
  mutable tick : unit -> unit;
  mutable on_close : int -> unit;
  mutable watches : (Unix.file_descr * (unit -> unit)) list;
  mutable phases : Phases.recorder option;
      (* When set, Query/Insert/Delete requests carry a phase cell. *)
  mutable flight : Telemetry.Flight.t option;  (* reported by Observe *)
  mutable observe_extra : unit -> (string * Json.t) list;
      (* Extension-owned Observe fields (replication lag, role). *)
  mutable last_write_trace_ : int64 option;
      (* Trace id of the most recent traced write — the replication hub
         stamps outgoing WAL frames with it so a tagged write's shipping
         and follower replay join its trace. *)
  m_requests : Metrics.counter;
  m_shed : Metrics.counter;
  m_ro_rejected : Metrics.counter;
  m_batches : Metrics.counter;
  m_acked : Metrics.counter;
  m_queue_depth : Metrics.gauge;
  m_in_flight : Metrics.gauge;
  m_conns : Metrics.gauge;
}

(* --- Listening sockets --------------------------------------------------------- *)

let listen_unix ~path =
  (match Unix.lstat path with
  | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
  | _ -> ()
  | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
  let fd = Unix.socket ~cloexec:true Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  fd

let listen_tcp ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
  Unix.listen fd 128;
  Unix.set_nonblock fd;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | Unix.ADDR_UNIX _ -> port
  in
  (fd, port)

(* --- Construction --------------------------------------------------------------- *)

let make ~config ~telemetry ~reg ~backend ~listen () =
  let adm =
    Admission.create
      ~config:
        { Admission.max_in_flight = config.max_in_flight;
          max_queue_depth = config.max_queue_depth }
      ()
  in
  (* A peer that disconnects mid-write must surface as EPIPE, not kill
     the process. *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  {
    cfg = config;
    tel = telemetry;
    reg;
    backend;
    adm;
    listen_fd = listen;
    conns = [];
    state = Accepting;
    next_id = 0;
    requests = 0;
    extension = None;
    tick = (fun () -> ());
    on_close = (fun _ -> ());
    watches = [];
    phases = None;
    flight = None;
    observe_extra = (fun () -> []);
    last_write_trace_ = None;
    m_requests = Metrics.counter reg ~help:"Requests decoded." "server_requests_total";
    m_shed =
      Metrics.counter reg ~help:"Requests shed with Overloaded." "server_shed_total";
    m_ro_rejected =
      Metrics.counter reg ~help:"Writes rejected while the engine was read-only."
        "server_read_only_rejected_total";
    m_batches = Metrics.counter reg ~help:"Group commits flushed." "server_batches_total";
    m_acked =
      Metrics.counter reg ~help:"Writes acknowledged through group commit."
        "server_acked_writes_total";
    m_queue_depth =
      Metrics.gauge reg ~help:"Writes queued for the next group commit."
        "server_queue_depth";
    m_in_flight =
      Metrics.gauge reg ~help:"Admitted requests awaiting a response." "server_in_flight";
    m_conns = Metrics.gauge reg ~help:"Open connections." "server_connections";
  }

let create ?(config = default_config) ?(telemetry = Tracer.noop) ?metrics ~engine ~listen
    () =
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  let m_batch_size =
    Metrics.histogram reg ~help:"Writes per group commit (one WAL sync each)."
      "server_batch_size"
  in
  let bat =
    Batcher.create ~max_batch:config.max_batch ~telemetry
      ~on_batch:(fun n -> Metrics.observe m_batch_size (float_of_int n))
      engine
  in
  let t =
    make ~config ~telemetry ~reg ~backend:(Single { eng = engine; bat }) ~listen ()
  in
  (* Health-aware routing without polling: the engine tells us the moment
     it degrades, and writes start bouncing at the admission gate. *)
  Durable.on_health_change engine (fun _ next ->
      Admission.set_read_only t.adm (next = Durable.Read_only));
  Admission.set_read_only t.adm (Durable.health engine = Durable.Read_only);
  t

let create_sharded ?(config = default_config) ?(telemetry = Tracer.noop) ?metrics
    ~cluster ~listen () =
  let reg = match metrics with Some r -> r | None -> Metrics.create () in
  (* No admission-level read-only gate here: health is per shard, so a
     write to a degraded shard bounces with its typed error while the
     healthy shards keep accepting. *)
  make ~config ~telemetry ~reg ~backend:(Sharded cluster) ~listen ()

(* --- Buffers -------------------------------------------------------------------- *)

let read_chunk = 64 * 1024

let ensure_in conn extra =
  let need = conn.in_len + extra in
  if Bytes.length conn.inbuf < need then begin
    let nb = Bytes.create (max need (2 * Bytes.length conn.inbuf)) in
    Bytes.blit conn.inbuf 0 nb 0 conn.in_len;
    conn.inbuf <- nb
  end

let out_pending conn = conn.out_len - conn.out_pos

let append_out conn b =
  if conn.out_pos = conn.out_len then begin
    conn.out_pos <- 0;
    conn.out_len <- 0
  end;
  let blen = Bytes.length b in
  if Bytes.length conn.out - conn.out_len < blen then begin
    if conn.out_pos > 0 then begin
      Bytes.blit conn.out conn.out_pos conn.out 0 (conn.out_len - conn.out_pos);
      conn.out_len <- conn.out_len - conn.out_pos;
      conn.out_pos <- 0
    end;
    let need = conn.out_len + blen in
    if Bytes.length conn.out < need then begin
      let nb = Bytes.create (max need (2 * Bytes.length conn.out)) in
      Bytes.blit conn.out 0 nb 0 conn.out_len;
      conn.out <- nb
    end
  end;
  Bytes.blit b 0 conn.out conn.out_len blen;
  conn.out_len <- conn.out_len + blen;
  conn.staged_total <- conn.staged_total + blen

(* Move the filled prefix of the slot queue into the write staging
   buffer — responses leave strictly in request order. *)
let rec pump conn =
  match Queue.peek_opt conn.slots with
  | Some ({ resp = Some bytes; _ } as slot) ->
      ignore (Queue.pop conn.slots);
      append_out conn bytes;
      (match slot.s_cell with
      | Some c -> Queue.add (c, slot.fill_ns, conn.staged_total) conn.flushes
      | None -> ());
      pump conn
  | Some { resp = None; _ } | None -> ()

(* --- Request handling ----------------------------------------------------------- *)

let reserve ?cell ?trace conn =
  let slot = { resp = None; s_cell = cell; s_trace = trace; fill_ns = 0L } in
  Queue.add slot conn.slots;
  slot

let fill slot resp =
  slot.resp <- Some (Wire.encode_response ?trace:slot.s_trace resp);
  if slot.s_cell <> None then slot.fill_ns <- Phases.now_ns ()

let err code detail = Wire.Err { code; detail }

let err_of_storage (e : E.t) =
  match e.errno with
  | E.Read_only_store -> err Wire.Read_only (E.to_string e)
  | _ -> err Wire.Write_failed (E.to_string e)

let queue_depth t =
  match t.backend with
  | Single { bat; _ } -> Batcher.pending bat
  | Sharded c -> Shard.Cluster.pending_writes c

let backend_health t =
  match t.backend with
  | Single { eng; _ } -> Durable.health eng
  | Sharded c -> Shard.Cluster.health c

let stats t =
  let ( updates, alive, pages, now, health, batches, acked, wal_syncs, horizon,
        pages_reclaimed, vacuum_steps ) =
    match t.backend with
    | Single { eng; bat } ->
        let w = Durable.warehouse eng in
        let io = Telemetry.Io_stats.snapshot (Durable.io_stats eng) in
        ( Rta.n_updates w,
          Rta.alive_count w,
          Rta.page_count w,
          Rta.now w,
          Durable.health eng,
          Batcher.batches bat,
          Batcher.acked bat,
          Wal.Stats.fsyncs (Durable.wal_stats eng),
          Durable.horizon eng,
          io.Telemetry.Io_stats.pages_reclaimed,
          io.Telemetry.Io_stats.vacuum_steps )
    | Sharded c ->
        (* Shards never vacuum (retention is a single-engine leader
           concern), so the horizon is always the floor. *)
        let s = Shard.Cluster.totals c in
        let io = Shard.Cluster.io_totals c in
        ( s.watermark, s.alive, s.pages, s.now, s.health, s.batches, s.acked,
          s.wal_syncs, 0, io.Telemetry.Io_stats.pages_reclaimed,
          io.Telemetry.Io_stats.vacuum_steps )
  in
  {
    Wire.updates;
    alive;
    pages;
    now;
    health;
    queue_depth = queue_depth t;
    in_flight = Admission.in_flight t.adm;
    conns = List.length t.conns;
    requests = t.requests;
    shed = Admission.shed t.adm;
    batches;
    batched_writes = acked;
    wal_syncs;
    horizon;
    pages_reclaimed;
    vacuum_steps;
  }

let shard_stats t : Wire.shard_stat list =
  match t.backend with
  | Sharded c ->
      List.map
        (fun (i : Shard.Cluster.shard_info) ->
          let s = i.stat in
          {
            Wire.shard = i.shard;
            s_klo = i.klo;
            s_khi = i.khi;
            watermark = s.watermark;
            reader_watermark = i.reader_watermark;
            s_now = s.now;
            s_alive = s.alive;
            s_queue = i.queue;
            s_batches = s.batches;
            s_acked = s.acked;
            s_wal_syncs = s.wal_syncs;
            s_health = s.health;
            s_io_reads = s.io.Telemetry.Io_stats.reads;
            s_io_writes = s.io.Telemetry.Io_stats.writes;
            s_io_syncs = s.io.Telemetry.Io_stats.syncs;
          })
        (Shard.Cluster.shard_infos c)
  | Single { eng; bat } ->
      (* A single-engine server is one shard covering the whole domain;
         there is no reader lag because queries read the engine itself. *)
      let w = Durable.warehouse eng in
      let io = Telemetry.Io_stats.snapshot (Durable.io_stats eng) in
      [
        {
          Wire.shard = 0;
          s_klo = 0;
          s_khi = Rta.max_key w;
          watermark = Rta.n_updates w;
          reader_watermark = Rta.n_updates w;
          s_now = Rta.now w;
          s_alive = Rta.alive_count w;
          s_queue = Batcher.pending bat;
          s_batches = Batcher.batches bat;
          s_acked = Batcher.acked bat;
          s_wal_syncs = Wal.Stats.fsyncs (Durable.wal_stats eng);
          s_health = Durable.health eng;
          s_io_reads = io.Telemetry.Io_stats.reads;
          s_io_writes = io.Telemetry.Io_stats.writes;
          s_io_syncs = io.Telemetry.Io_stats.syncs;
        };
      ]

(* The Observe reply: one JSON document with every liveness gauge the
   paper-plane exposes — per-shard watermark/reader lag and snapshot
   age, backlog depth, retention-horizon distance, disk pressure, the
   phase-histogram summary, flight-recorder state, plus whatever the
   replication extension contributes through [observe_extra]. *)
let observe_json t =
  let s = stats t in
  let health_str h = Format.asprintf "%a" Durable.pp_health h in
  let now = Phases.now_ns () in
  let age_ms published =
    if published = 0L then Json.Null
    else Json.Float (Int64.to_float (Int64.sub now published) /. 1e6)
  in
  let shards =
    match t.backend with
    | Sharded c ->
        List.map
          (fun (i : Shard.Cluster.shard_info) ->
            let st = i.stat in
            Json.Obj
              [
                ("shard", Json.Int i.shard);
                ("klo", Json.Int i.klo);
                ("khi", Json.Int i.khi);
                ("watermark", Json.Int st.Shard.Snapshot.watermark);
                ("reader_watermark", Json.Int i.reader_watermark);
                ( "reader_lag",
                  Json.Int (st.Shard.Snapshot.watermark - i.reader_watermark) );
                ("queue", Json.Int i.queue);
                ("snapshot_age_ms", age_ms st.Shard.Snapshot.published_ns);
                ("health", Json.Str (health_str st.Shard.Snapshot.health));
              ])
          (Shard.Cluster.shard_infos c)
    | Single { eng; bat } ->
        let w = Durable.warehouse eng in
        [
          Json.Obj
            [
              ("shard", Json.Int 0);
              ("klo", Json.Int 0);
              ("khi", Json.Int (Rta.max_key w));
              ("watermark", Json.Int (Rta.n_updates w));
              ("reader_watermark", Json.Int (Rta.n_updates w));
              ("reader_lag", Json.Int 0);
              ("queue", Json.Int (Batcher.pending bat));
              ("snapshot_age_ms", Json.Float 0.);
              ("health", Json.Str (health_str (Durable.health eng)));
            ];
        ]
  in
  let engine_fields =
    match t.backend with
    | Single { eng; _ } ->
        [
          ( "pressure",
            Json.Str (Format.asprintf "%a" Durable.pp_pressure (Durable.pressure eng))
          );
          ("disk_used", Json.Int (Durable.disk_used eng));
          ("wal_unsynced", Json.Int (Durable.wal_unsynced eng));
          ("horizon_distance", Json.Int (max 0 (s.Wire.now - s.Wire.horizon)));
        ]
    | Sharded _ -> []
  in
  let phases = match t.phases with Some r -> Phases.summary_json r | None -> Json.Null in
  let flight =
    match t.flight with
    | None -> Json.Obj [ ("enabled", Json.Bool false) ]
    | Some f ->
        let buf = Telemetry.Flight.buffer f in
        Json.Obj
          [
            ("enabled", Json.Bool true);
            ("dumps", Json.Int (Telemetry.Flight.dumps f));
            ("spans_recorded", Json.Int (Tracer.Memory.span_count buf));
            ("spans_dropped", Json.Int (Tracer.Memory.dropped buf));
          ]
  in
  Json.to_string
    (Json.Obj
       ([
          ("type", Json.Str "observe");
          ("pid", Json.Int (Tracer.self_pid ()));
          ("health", Json.Str (health_str s.Wire.health));
          ("updates", Json.Int s.Wire.updates);
          ("now", Json.Int s.Wire.now);
          ("queue_depth", Json.Int s.Wire.queue_depth);
          ("in_flight", Json.Int s.Wire.in_flight);
          ("conns", Json.Int s.Wire.conns);
          ("requests", Json.Int s.Wire.requests);
          ("shed", Json.Int s.Wire.shed);
          ("horizon", Json.Int s.Wire.horizon);
        ]
       @ engine_fields
       @ [ ("shards", Json.List shards); ("phases", phases); ("flight", flight) ]
       @ t.observe_extra ()))

let outcome_response = function
  | Batcher.Applied -> Wire.Ack
  | Batcher.Rejected m -> err Wire.Invalid_request m
  | Batcher.Failed e -> err_of_storage e

let cluster_outcome_response = function
  | Shard.Cluster.Applied -> Wire.Ack
  | Shard.Cluster.Rejected m -> err Wire.Invalid_request m
  | Shard.Cluster.Failed e -> err_of_storage e

let query_error_response = function
  | Shard.Cluster.Bad_query m -> err Wire.Invalid_request m
  | Shard.Cluster.Io e -> err_of_storage e

(* Replication opcodes route to the extension.  [Wal_ack] is
   fire-and-forget by protocol, so it never reserves a response slot —
   with or without an extension installed. *)
let handle_ext t conn (req : Wire.request) =
  let silent = match req with Wire.Wal_ack _ -> true | _ -> false in
  let reply resp = if not silent then fill (reserve conn) resp in
  if t.state <> Accepting then reply (err Wire.Shutting_down "server is draining")
  else
    match t.extension with
    | None -> reply (err Wire.Invalid_request "replication is not enabled on this server")
    | Some f -> (
        let ctx =
          {
            ext_conn = conn.id;
            ext_push = (fun b -> if not conn.dead then append_out conn b);
            ext_pending = (fun () -> out_pending conn);
          }
        in
        match f ctx req with
        | Ext_silent -> ()
        | Ext_pass -> reply (err Wire.Invalid_request "unsupported replication request")
        | Ext_reply resp -> reply resp
        | Ext_subscribe resp ->
            (* Stage the handshake reply *now*: frames the extension
               pushes from later ticks bypass the slot queue, and the
               subscriber must decode its [Sub_ok] before any of them. *)
            fill (reserve conn) resp;
            pump conn;
            conn.subscriber <- true)

let handle_request t conn ~trace ~t0 (req : Wire.request) =
  t.requests <- t.requests + 1;
  Metrics.inc t.m_requests;
  match req with
  | Wire.Wal_subscribe _ | Wire.Wal_ack _ | Wire.Replica_stats | Wire.Promote ->
      handle_ext t conn req
  | _ when conn.subscriber ->
      (* The out stream belongs to pushed frames now; interleaving
         ordinary responses would corrupt the follower's positional
         request/response matching. *)
      fill (reserve conn)
        (err Wire.Invalid_request "connection is a replication subscription")
  | _ -> (
  (* Phase accounting rides the data-plane requests only; [t0] is the
     clock just before this frame's decode started. *)
  let cell =
    match (t.phases, req) with
    | None, _ -> None
    | Some _, Wire.Query _ -> Some (Phases.cell ~kind:"query" ~trace)
    | Some _, Wire.Insert _ -> Some (Phases.cell ~kind:"insert" ~trace)
    | Some _, Wire.Delete _ -> Some (Phases.cell ~kind:"delete" ~trace)
    | Some _, _ -> None
  in
  (match cell with Some c -> Phases.charge c Phases.Decode ~since:t0 | None -> ());
  let slot = reserve ?cell ?trace conn in
  if t.state <> Accepting then fill slot (err Wire.Shutting_down "server is draining")
  else
    match req with
    | Wire.Shutdown ->
        t.state <- Draining;
        fill slot Wire.Ack
    | Wire.Ping -> fill slot Wire.Pong
    | Wire.Health -> fill slot (Wire.Health_reply (backend_health t))
    | Wire.Stats -> fill slot (Wire.Stats_reply (stats t))
    | Wire.Shard_stats -> fill slot (Wire.Shard_stats_reply (shard_stats t))
    | Wire.Observe -> fill slot (Wire.Observe_reply (observe_json t))
    | Wire.Query _ | Wire.Insert _ | Wire.Delete _ | Wire.Checkpoint | Wire.Vacuum _ -> (
        let t_adm0 = match cell with Some _ -> Phases.now_ns () | None -> 0L in
        let decision =
          Admission.admit t.adm ~queue_depth:(queue_depth t) ~write:(Wire.is_write req)
        in
        (match cell with
        | Some c -> Phases.charge c Phases.Admission_wait ~since:t_adm0
        | None -> ());
        match decision with
        | Admission.Reject_read_only ->
            Metrics.inc t.m_ro_rejected;
            fill slot (err Wire.Read_only "engine is read-only; queries still serve")
        | Admission.Shed ->
            Metrics.inc t.m_shed;
            fill slot (err Wire.Overloaded "admission limit reached; back off and retry")
        | Admission.Admit -> (
            if Wire.is_write req && trace <> None then t.last_write_trace_ <- trace;
            match (req, t.backend) with
            | Wire.Query { agg = _; klo; khi; tlo; thi }, Single { eng; _ } ->
                let t_q0 = match cell with Some _ -> Phases.now_ns () | None -> 0L in
                let resp =
                  Tracer.with_span t.tel "server.request"
                    ~attrs:(fun () -> [ ("kind", Tracer.Str "query") ])
                  @@ fun () ->
                  let reads_before =
                    if t.cfg.sim_io_ns > 0 then
                      (Telemetry.Io_stats.snapshot (Durable.io_stats eng))
                        .Telemetry.Io_stats.reads
                    else 0
                  in
                  match Durable.sum_count eng ~klo ~khi ~tlo ~thi with
                  | sum, count ->
                      if t.cfg.sim_io_ns > 0 then begin
                        let touches =
                          (Telemetry.Io_stats.snapshot (Durable.io_stats eng))
                            .Telemetry.Io_stats.reads - reads_before
                        in
                        if touches > 0 then
                          Unix.sleepf (float_of_int (t.cfg.sim_io_ns * touches) /. 1e9)
                      end;
                      Wire.Agg { sum; count }
                  | exception Invalid_argument m -> err Wire.Invalid_request m
                  | exception Mvsbt.Below_horizon { at; horizon } ->
                      err Wire.Below_horizon
                        (Printf.sprintf
                           "time %d is below the retention horizon %d (vacuumed)" at
                           horizon)
                  | exception E.Io e -> err_of_storage e
                in
                (match cell with
                | Some c -> Phases.charge c Phases.Apply ~since:t_q0
                | None -> ());
                fill slot resp;
                Admission.release t.adm
            | Wire.Query { agg = _; klo; khi; tlo; thi }, Sharded c ->
                Shard.Cluster.submit_query c ?cell ?trace ~klo ~khi ~tlo ~thi
                  (fun res ->
                    (match res with
                    | Ok (sum, count) -> fill slot (Wire.Agg { sum; count })
                    | Error e -> fill slot (query_error_response e));
                    Admission.release t.adm)
            | Wire.Insert { key; value; at }, Single { bat; _ } ->
                Batcher.enqueue bat ?cell ?trace
                  (Batcher.Insert { key; value; at })
                  (fun outcome ->
                    fill slot (outcome_response outcome);
                    Admission.release t.adm)
            | Wire.Insert { key; value; at }, Sharded c ->
                Shard.Cluster.submit_write c ?cell ?trace
                  (Shard.Op.Insert { key; value; at })
                  (fun outcome ->
                    fill slot (cluster_outcome_response outcome);
                    Admission.release t.adm)
            | Wire.Delete { key; at }, Single { bat; _ } ->
                Batcher.enqueue bat ?cell ?trace
                  (Batcher.Delete { key; at })
                  (fun outcome ->
                    fill slot (outcome_response outcome);
                    Admission.release t.adm)
            | Wire.Delete { key; at }, Sharded c ->
                Shard.Cluster.submit_write c ?cell ?trace
                  (Shard.Op.Delete { key; at })
                  (fun outcome ->
                    fill slot (cluster_outcome_response outcome);
                    Admission.release t.adm)
            | Wire.Checkpoint, Single { eng; bat } ->
                (* Order barrier: the snapshot must cover every write
                   queued before the checkpoint request. *)
                let resp =
                  Tracer.with_span t.tel "server.request"
                    ~attrs:(fun () -> [ ("kind", Tracer.Str "checkpoint") ])
                  @@ fun () ->
                  Batcher.flush bat;
                  match Durable.checkpoint eng with
                  | Ok () -> Wire.Ack
                  | Error e -> err_of_storage e
                in
                fill slot resp;
                Admission.release t.adm
            | Wire.Vacuum { horizon; max_pages_per_step }, Single { eng; bat } ->
                let resp =
                  Tracer.with_span t.tel "server.request"
                    ~attrs:(fun () -> [ ("kind", Tracer.Str "vacuum") ])
                  @@ fun () ->
                  if Admission.standby t.adm then
                    err Wire.Invalid_request
                      "this node is a follower; vacuum the leader (retention ships \
                       through the WAL)"
                  else begin
                    (* Same order barrier as checkpoint: the horizon must
                       land after every write queued before this request. *)
                    Batcher.flush bat;
                    let max_pages_per_step =
                      if max_pages_per_step <= 0 then 128 else max_pages_per_step
                    in
                    match Durable.vacuum eng ~max_pages_per_step ~horizon with
                    | Ok r ->
                        Wire.Vacuum_reply
                          {
                            v_horizon = r.Rta.v_horizon;
                            v_steps = r.Rta.v_steps;
                            v_pages_freed = r.Rta.v_progress.Rta.pages_freed;
                            v_pages_pruned = r.Rta.v_progress.Rta.pages_pruned;
                            v_records_dropped = r.Rta.v_progress.Rta.records_dropped;
                          }
                    | Error e -> err_of_storage e
                    | exception Invalid_argument m -> err Wire.Invalid_request m
                  end
                in
                fill slot resp;
                Admission.release t.adm
            | Wire.Vacuum _, Sharded _ ->
                fill slot
                  (err Wire.Invalid_request "vacuum is not supported on a sharded server");
                Admission.release t.adm
            | Wire.Checkpoint, Sharded c ->
                (* Per-shard FIFO mailboxes are the order barrier: each
                   writer checkpoints behind every write queued before
                   this request. *)
                Shard.Cluster.submit_checkpoint c (fun res ->
                    (match res with
                    | Ok () -> fill slot Wire.Ack
                    | Error e -> fill slot (err_of_storage e));
                    Admission.release t.adm)
            | ( ( Wire.Stats | Wire.Health | Wire.Ping | Wire.Shutdown
                | Wire.Shard_stats | Wire.Observe | Wire.Wal_subscribe _
                | Wire.Wal_ack _ | Wire.Replica_stats | Wire.Promote ),
                _ ) ->
                assert false))
    | Wire.Wal_subscribe _ | Wire.Wal_ack _ | Wire.Replica_stats | Wire.Promote ->
        assert false (* dispatched to the extension above *))

(* Decode every complete frame in the input buffer.  On a framing error
   the byte stream can no longer be trusted: answer once, stop reading,
   close after the answer flushes. *)
let parse t conn =
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    let t0 = if t.phases <> None then Phases.now_ns () else 0L in
    match
      Wire.decode_request_traced ~buf:conn.inbuf ~pos:!pos ~avail:(conn.in_len - !pos)
    with
    | Wire.Complete ((req, trace), used) ->
        pos := !pos + used;
        (* The trace id is ambient for the whole handling extent, so
           every span below — engine apply, batcher, extension — joins
           the request's trace without threading it by hand. *)
        Tracer.with_trace ~trace (fun () -> handle_request t conn ~trace ~t0 req)
    | Wire.Incomplete -> continue := false
    | Wire.Fail e ->
        let slot = reserve conn in
        fill slot (err Wire.Bad_request (Format.asprintf "%a" Wire.pp_error e));
        conn.close_after_flush <- true;
        conn.in_len <- 0;
        pos := 0;
        continue := false
  done;
  if !pos > 0 then begin
    Bytes.blit conn.inbuf !pos conn.inbuf 0 (conn.in_len - !pos);
    conn.in_len <- conn.in_len - !pos
  end

(* --- Socket I/O ------------------------------------------------------------------ *)

let close_conn t conn =
  if not conn.dead then begin
    conn.dead <- true;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* After the fd is gone: the hook may push to other connections but
       must see this one already dead. *)
    t.on_close conn.id
  end

let read_conn t conn =
  ensure_in conn read_chunk;
  match Unix.read conn.fd conn.inbuf conn.in_len read_chunk with
  | 0 ->
      (* EOF.  Any responses still owed are flushed before closing. *)
      if Queue.is_empty conn.slots && out_pending conn = 0 then close_conn t conn
      else conn.close_after_flush <- true
  | n ->
      conn.in_len <- conn.in_len + n;
      parse t conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
  | exception Unix.Unix_error _ -> close_conn t conn

(* Finish every phase cell whose response bytes are now fully on the
   socket: the reply-flush phase runs from fill to here. *)
let rec complete_flushes t conn =
  match Queue.peek_opt conn.flushes with
  | Some (c, fill_ns, target) when target <= conn.sent_total ->
      ignore (Queue.pop conn.flushes);
      (match t.phases with
      | Some r ->
          Phases.charge c Phases.Reply_flush ~since:fill_ns;
          Phases.finish r c
      | None -> ());
      complete_flushes t conn
  | _ -> ()

let write_conn t conn =
  if out_pending conn > 0 then
    match Unix.write conn.fd conn.out conn.out_pos (out_pending conn) with
    | n ->
        conn.out_pos <- conn.out_pos + n;
        conn.sent_total <- conn.sent_total + n;
        if conn.out_pos = conn.out_len then begin
          conn.out_pos <- 0;
          conn.out_len <- 0
        end;
        complete_flushes t conn
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) -> ()
    | exception Unix.Unix_error _ -> close_conn t conn

let rec accept_loop t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | fd, _ ->
      Unix.set_nonblock fd;
      let conn =
        {
          fd;
          id = t.next_id;
          inbuf = Bytes.create read_chunk;
          in_len = 0;
          slots = Queue.create ();
          out = Bytes.create 4096;
          out_pos = 0;
          out_len = 0;
          staged_total = 0;
          sent_total = 0;
          flushes = Queue.create ();
          close_after_flush = false;
          dead = false;
          subscriber = false;
        }
      in
      t.next_id <- t.next_id + 1;
      t.conns <- t.conns @ [ conn ];
      accept_loop t
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_loop t
  | exception Unix.Unix_error _ -> ()

(* --- The loop -------------------------------------------------------------------- *)

let conn_busy c = (not (Queue.is_empty c.slots)) || out_pending c > 0

let step t ~timeout =
  match t.state with
  | Stopped -> false
  | _ ->
      t.conns <- List.filter (fun c -> not c.dead) t.conns;
      let read_fds =
        (if t.state = Accepting then [ t.listen_fd ] else [])
        @ (match t.backend with
          | Single _ -> []
          | Sharded c -> [ Shard.Cluster.wake_fd c ])
        @ List.map fst t.watches
        @ List.filter_map
            (fun c ->
              (* Backpressure: a connection drowning in unread responses
                 stops being read until the client drains them.  During a
                 drain nothing new is read at all.  Subscribers are
                 exempt from the high-water pause: a shipping backlog can
                 dwarf the limit, and pausing reads would also pause the
                 very acks that let the backlog shrink. *)
              if
                t.state <> Accepting || c.close_after_flush
                || (out_pending c >= t.cfg.high_water && not c.subscriber)
              then None
              else Some c.fd)
            t.conns
      in
      let write_fds = List.filter_map (fun c -> if conn_busy c then Some c.fd else None) t.conns in
      let rs, _, _ =
        try Unix.select read_fds write_fds [] timeout
        with Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      in
      if List.mem t.listen_fd rs then accept_loop t;
      (* Snapshot: a watch callback may add or remove watches. *)
      List.iter
        (fun (fd, k) -> if List.mem fd rs && List.mem_assoc fd t.watches then k ())
        t.watches;
      List.iter (fun c -> if (not c.dead) && List.mem c.fd rs then read_conn t c) t.conns;
      (* Single: the group commit — every write parsed this iteration
         (across all connections) lands under one WAL sync per
         [max_batch] chunk.  Sharded: run completion callbacks posted by
         the writer/reader domains (the shards group-commit on their own
         clocks). *)
      (match t.backend with
      | Single { bat; _ } -> Batcher.flush bat
      | Sharded c -> ignore (Shard.Cluster.drain c));
      (* Extension tick after group commit (the gate callbacks have run,
         new WAL records are durable and shippable) and before the pump
         (anything the tick fills or pushes flushes this same step). *)
      t.tick ();
      List.iter
        (fun c ->
          if not c.dead then begin
            pump c;
            write_conn t c
          end)
        t.conns;
      List.iter
        (fun c ->
          if (not c.dead) && c.close_after_flush && Queue.is_empty c.slots
             && out_pending c = 0
          then close_conn t c)
        t.conns;
      t.conns <- List.filter (fun c -> not c.dead) t.conns;
      Metrics.set_gauge t.m_queue_depth (float_of_int (queue_depth t));
      Metrics.set_gauge t.m_in_flight (float_of_int (Admission.in_flight t.adm));
      Metrics.set_gauge t.m_conns (float_of_int (List.length t.conns));
      (match t.backend with
      | Single { bat; _ } ->
          Metrics.set_counter t.m_batches (Batcher.batches bat);
          Metrics.set_counter t.m_acked (Batcher.acked bat)
      | Sharded c ->
          let s = Shard.Cluster.totals c in
          Metrics.set_counter t.m_batches s.batches;
          Metrics.set_counter t.m_acked s.acked);
      (match t.state with
      | Draining ->
          let backend_idle =
            match t.backend with
            | Single { bat; _ } -> Batcher.pending bat = 0
            | Sharded c -> Shard.Cluster.outstanding c = 0
          in
          if (not (List.exists conn_busy t.conns)) && backend_idle then begin
            List.iter (close_conn t) t.conns;
            t.conns <- [];
            (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
            t.state <- Stopped
          end
      | Accepting | Stopped -> ());
      t.state <> Stopped

let run t = while step t ~timeout:1.0 do () done

let request_shutdown t = if t.state = Accepting then t.state <- Draining
let shutting_down t = t.state <> Accepting
let connections t = List.length t.conns
let requests t = t.requests

let engine t =
  match t.backend with
  | Single { eng; _ } -> eng
  | Sharded _ -> invalid_arg "Server.engine: this server is sharded (use cluster)"

let batcher t =
  match t.backend with
  | Single { bat; _ } -> bat
  | Sharded _ -> invalid_arg "Server.batcher: this server is sharded (use cluster)"

let cluster t = match t.backend with Sharded c -> Some c | Single _ -> None
let admission t = t.adm
let metrics t = t.reg
let set_extension t f = t.extension <- Some f
let set_tick t f = t.tick <- f
let on_conn_close t f = t.on_close <- f
let add_watch t fd k = t.watches <- (fd, k) :: List.remove_assoc fd t.watches
let remove_watch t fd = t.watches <- List.remove_assoc fd t.watches
let telemetry t = t.tel
let enable_phases t r = t.phases <- Some r
let phase_recorder t = t.phases
let set_flight t f = t.flight <- Some f
let flight t = t.flight
let set_observe_extra t f = t.observe_extra <- f
let last_write_trace t = t.last_write_trace_
