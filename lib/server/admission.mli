(** Admission control: bounded in-flight work, bounded write queue, and
    health-aware write rejection.

    The server is a single event loop; what protects it from a client
    flood is refusing work {e at the door}, before any engine I/O:

    - at most [max_in_flight] admitted requests may be awaiting a
      response at once (queries in execution, writes queued for group
      commit) — beyond that every request is shed with a typed
      [Overloaded] response the client can back off on;
    - writes are additionally bounded by [max_queue_depth] against the
      group-commit queue, so a write burst cannot grow the batch queue
      (and the ack latency of everything in it) without bound;
    - when the engine degrades to read-only ({!Durable.health}, flipped
      here by the server's {!Durable.on_health_change} hook), writes are
      rejected with [Read_only] {e without touching the engine}, while
      queries keep being admitted — serving what can be served.

    Shedding is cheap by design: a shed request costs one decoded frame
    and one small response, never an engine call or an fsync. *)

type config = {
  max_in_flight : int;  (** Admitted-but-unanswered cap (default 1024). *)
  max_queue_depth : int;  (** Group-commit queue cap for writes (default 256). *)
}

val default_config : config

type t

val create : ?config:config -> unit -> t

type decision =
  | Admit
  | Shed  (** Over a limit — answer [Overloaded], engine untouched. *)
  | Reject_read_only
      (** A write against a read-only engine — answer [Read_only],
          engine untouched.  Not counted as shed: the server is not
          overloaded, the store is degraded. *)

val admit : t -> queue_depth:int -> write:bool -> decision
(** Decide one request.  [queue_depth] is the current group-commit queue
    length (only consulted for writes).  [Admit] takes an in-flight slot
    the caller must eventually {!release}. *)

val release : t -> unit
(** Return one in-flight slot — call exactly once per admitted request,
    when its response is handed to the connection. *)

val set_read_only : t -> bool -> unit
(** Flip write rejection; wired to {!Durable.on_health_change}. *)

val read_only : t -> bool

val set_standby : t -> bool -> unit
(** Follower mode: reject writes with [Read_only] even though the engine
    is healthy — the node serves replicated reads and must not diverge
    from its leader.  Independent of {!set_read_only} (health), so a
    promotion (standby off) does not accidentally clear a genuine
    degradation, and recovery does not re-enable writes on a follower. *)

val standby : t -> bool

val in_flight : t -> int

val shed : t -> int
(** Requests shed over this admission gate's life. *)

val rejected_read_only : t -> int
val config : t -> config
