(** The network wire protocol: versioned, length-prefixed, CRC32-framed
    binary messages over a byte stream.

    Every message travels as one frame:

    {v
    +----------+----------+----------------------+
    | len  u32 | crc  u32 | payload (len bytes)  |
    +----------+----------+----------------------+
    payload (v1) = 1 u8 | tag u8 | body
    payload (v2) = 2 u8 | trace i64 | tag u8 | body
    v}

    Version 2 differs from version 1 only by the trace id interposed
    between the version and the tag — the distributed-tracing request id
    that stitches spans across processes.  Negotiation is per-frame: an
    encoder without [?trace] emits version 1 byte for byte as before, so
    old clients interoperate with new servers (and vice versa for every
    v1 message); the decoder accepts both versions and the [*_traced]
    variants surface the id.

    [len] counts the payload only and is validated against
    {!max_payload_bytes} {e before} any allocation, so a hostile length
    prefix cannot make the decoder over-read or over-allocate.  [crc] is
    the {!Storage.Codec.crc32} of the payload, checked before the payload
    is interpreted.  Integers are little-endian ({!Storage.Codec}); the
    protocol [version] is the first payload byte so it is covered by the
    checksum.

    The decoder is total: any byte sequence yields either a decoded
    message, {!decoded.Incomplete} (a well-formed prefix — read more
    bytes), or a typed {!error} — never an exception, and it never reads
    past [pos + avail].

    Responses carry no request ids: the server answers each connection's
    requests strictly in arrival order, so pipelined clients match
    responses to requests by position. *)

val version : int
(** Baseline protocol version (1): untraced frames. *)

val version_traced : int
(** Protocol version 2: identical to v1 plus a trace id after the
    version byte. *)

val frame_header_bytes : int
(** Bytes before the payload: 4 (length) + 4 (CRC). *)

val max_payload_bytes : int
(** Sanity bound on one payload; larger length prefixes are {!Oversized}. *)

(** {1 Messages} *)

type agg = Sum | Count | Avg

type request =
  | Query of { agg : agg; klo : int; khi : int; tlo : int; thi : int }
      (** Range-temporal aggregate over [\[klo,khi) x \[tlo,thi)]. *)
  | Insert of { key : int; value : int; at : int }
  | Delete of { key : int; at : int }
  | Checkpoint  (** Snapshot the warehouse and truncate its log. *)
  | Stats  (** Server and engine counters; see {!stats}. *)
  | Health  (** The engine's current {!Durable.health}. *)
  | Ping
  | Shutdown
      (** Ask the server to drain — stop accepting, finish queued work,
          flush every connection, exit its loop. *)
  | Shard_stats
      (** Per-shard counters and watermarks; a single-shard server
          answers with one entry covering the whole key domain. *)
  | Wal_subscribe of { epoch : int; from_seq : int }
      (** Replication handshake: stream WAL records with sequence numbers
          above [from_seq].  [epoch] is the highest fencing epoch the
          follower has seen; a leader with a lower epoch has been deposed
          and must answer [Err Fenced]. *)
  | Wal_ack of { epoch : int; seq : int }
      (** Follower → leader: every record up to [seq] is replayed {e and
          fsynced} on the follower.  Fire-and-forget: no response. *)
  | Replica_stats  (** Replication role, watermarks, and counters. *)
  | Promote
      (** Ask a follower to promote itself to leader now (manual
          failover).  A leader answers [Err Invalid_request]. *)
  | Vacuum of { horizon : int; max_pages_per_step : int }
      (** Raise the retention horizon to [horizon] and reclaim dead pages
          online, [max_pages_per_step] pages per WAL-logged chunk (0
          means the server default).  Answered with {!Vacuum_reply}.
          Sharded servers and followers answer [Err Invalid_request]:
          retention is driven on a single-engine leader and reaches
          followers through the shipped WAL. *)
  | Observe
      (** Live observability snapshot: per-shard and per-follower lag
          gauges, snapshot age, backlog depth, vacuum horizon distance,
          disk pressure, flight-recorder state.  Answered with
          {!Observe_reply}. *)

type error_code =
  | Bad_request  (** The frame decoded but the message made no sense. *)
  | Invalid_request
      (** Precondition violation (key out of range, 1TNF conflict, time
          going backwards) — the engine state is untouched. *)
  | Overloaded  (** Admission control shed the request; retry later. *)
  | Read_only
      (** The engine is in read-only degradation: writes are rejected,
          queries keep serving. *)
  | Write_failed  (** The update was not applied (typed storage error). *)
  | Shutting_down  (** The server is draining and takes no new work. *)
  | Fenced
      (** The sender's fencing epoch is stale: a newer leader exists.
          Deposed leaders and lagging followers must stop and re-sync. *)
  | Rebootstrap
      (** A replication subscriber cannot be served from the in-memory
          backlog — behind the evicted floor, or ahead of the leader's
          durable watermark (divergent history).  Retrying is useless:
          the node must be re-seeded from a checkpoint copy, or an
          operator must promote it. *)
  | Below_horizon
      (** The query's time range dips below the engine's retention
          horizon: the versions it would read have been vacuumed.  The
          engine state is untouched; narrow the range or query another
          replica with a longer retention. *)

val pp_error_code : Format.formatter -> error_code -> unit

type stats = {
  updates : int;  (** Inserts + deletes applied over the engine's life. *)
  alive : int;
  pages : int;
  now : int;
  health : Durable.health;
  queue_depth : int;  (** Writes queued for the next group commit. *)
  in_flight : int;  (** Admitted requests not yet answered. *)
  conns : int;
  requests : int;  (** Requests decoded over the server's life. *)
  shed : int;  (** Requests answered [Overloaded]. *)
  batches : int;  (** Group commits flushed. *)
  batched_writes : int;  (** Writes acknowledged through group commit. *)
  wal_syncs : int;
  horizon : int;  (** Retention horizon; versions below it are vacuumed. *)
  pages_reclaimed : int;  (** Pages freed or pruned by vacuum, engine life. *)
  vacuum_steps : int;  (** Vacuum chunks applied, engine life. *)
}

(** One shard's row in a [Shard_stats] reply: its key range, the
    writer's committed version watermark, the minimum watermark the
    reader replicas have applied (their snapshot lag), queue depth, group
    commit counters, health, and I/O — see {!Shard.Snapshot}. *)
type shard_stat = {
  shard : int;
  s_klo : int;
  s_khi : int;  (** Half-open key range [\[s_klo, s_khi)]. *)
  watermark : int;
  reader_watermark : int;
  s_now : int;
  s_alive : int;
  s_queue : int;
  s_batches : int;
  s_acked : int;
  s_wal_syncs : int;
  s_health : Durable.health;
  s_io_reads : int;
  s_io_writes : int;
  s_io_syncs : int;
}

(** A node's replication role: [R_single] (no replication attached),
    [R_leader] (ships WAL frames, gates acks), [R_follower] (replays
    frames, serves read-only queries). *)
type role = R_single | R_leader | R_follower

type replica_stats = {
  r_role : role;
  r_epoch : int;  (** Current fencing epoch. *)
  r_durable : int;
      (** Leader: fsync-covered WAL prefix (what may be shipped).
          Follower: its own replayed-and-fsynced watermark. *)
  r_commit : int;
      (** Leader: replication-acknowledged watermark — with
          [sync_replicas >= 1] the prefix whose client acks may be
          released.  Follower: equals [r_durable]. *)
  r_leader_durable : int;
      (** Follower: the leader's durable watermark as last heard;
          leader: [= r_durable]. *)
  r_lag : int;
      (** Leader: durable − min subscriber ack (0 with no subscribers);
          follower: leader durable − own replayed watermark. *)
  r_frames_shipped : int;
  r_frames_replayed : int;
  r_promotions : int;  (** Failover promotions performed by this process. *)
  r_followers : (int * int) list;  (** Leader: (subscriber id, acked seq). *)
}

type response =
  | Agg of { sum : int; count : int }
      (** Answer to any {!Query}: AVG is [sum/count], client-side. *)
  | Ack  (** Insert / delete / checkpoint / shutdown succeeded. *)
  | Err of { code : error_code; detail : string }
  | Stats_reply of stats
  | Health_reply of Durable.health
  | Pong
  | Shard_stats_reply of shard_stat list
  | Sub_ok of { epoch : int; floor : int; durable : int }
      (** Subscription accepted at [epoch]; the leader's backlog reaches
          back to sequence [floor] (exclusive) and its durable watermark
          is [durable].  A follower below [floor] needs a snapshot
          transfer and is refused instead. *)
  | Wal_frames of { epoch : int; durable : int; commit : int; frames : bytes list }
      (** A batch of WAL record payloads in sequence order, each
          CRC-framed inside the message exactly like the on-disk log.  An
          empty [frames] list is a heartbeat carrying watermarks only. *)
  | Replica_stats_reply of replica_stats
  | Vacuum_reply of {
      v_horizon : int;  (** The horizon the store now enforces. *)
      v_steps : int;  (** WAL-logged chunks the vacuum ran as. *)
      v_pages_freed : int;
      v_pages_pruned : int;  (** Pages with dead records dropped in place. *)
      v_records_dropped : int;
    }  (** Answer to {!request.Vacuum}. *)
  | Observe_reply of string
      (** JSON text (parse with {!Telemetry.Json.of_string}); the schema
          is owned by the server so gauges can grow without wire
          changes. *)

val pp_request : Format.formatter -> request -> unit
val pp_response : Format.formatter -> response -> unit
val pp_shard_stat : Format.formatter -> shard_stat -> unit
val pp_role : Format.formatter -> role -> unit

(** {1 Encoding} *)

val encode_request : ?trace:int64 -> request -> bytes
(** The complete frame, ready to write.  Without [?trace] this is the
    version-1 encoding, byte for byte; with it, the version-2 encoding
    carrying the trace id. *)

val encode_response : ?trace:int64 -> response -> bytes

val frame : bytes -> bytes
(** Frame an arbitrary payload (length prefix + CRC + payload verbatim).
    The payload must already start with its version and tag bytes —
    {!encode_request}/{!encode_response} are built on this; tests use it
    to craft adversarial frames (wrong version, unknown tag, junk body)
    whose checksum is nevertheless valid.
    @raise Invalid_argument if the payload is empty or exceeds
    {!max_payload_bytes}. *)

(** {1 Decoding} *)

type error =
  | Oversized of int  (** Length prefix beyond {!max_payload_bytes}. *)
  | Bad_length of int  (** Length prefix too small to hold any message. *)
  | Bad_crc  (** Checksum mismatch: the payload is corrupt. *)
  | Unknown_version of int
  | Unknown_tag of int
  | Bad_payload of string
      (** The payload ended early, held an out-of-range field, or had
          trailing bytes after a complete message. *)

val pp_error : Format.formatter -> error -> unit

type 'a decoded =
  | Complete of 'a * int
      (** The message plus the total frame bytes consumed (header and
          payload), so the caller can advance its buffer. *)
  | Incomplete
      (** A valid prefix of a frame — not an error, read more bytes.  A
          stream that {e ends} here was truncated mid-frame. *)
  | Fail of error

val decode_request : buf:bytes -> pos:int -> avail:int -> request decoded
(** Decode one frame from [buf.(pos .. pos+avail)].  Never raises, never
    reads outside that window.  Accepts v1 and v2 frames; any trace id
    is dropped — use {!decode_request_traced} to see it. *)

val decode_response : buf:bytes -> pos:int -> avail:int -> response decoded

val decode_request_traced :
  buf:bytes -> pos:int -> avail:int -> (request * int64 option) decoded
(** Like {!decode_request} but surfacing the v2 trace id ([None] on v1
    frames). *)

val decode_response_traced :
  buf:bytes -> pos:int -> avail:int -> (response * int64 option) decoded

val is_write : request -> bool
(** [Insert] and [Delete] — the requests group commit batches and a
    read-only engine rejects. *)
