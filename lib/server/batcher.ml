module E = Storage.Storage_error
module Phases = Telemetry.Phases

type op =
  | Insert of { key : int; value : int; at : int }
  | Delete of { key : int; at : int }

type outcome = Applied | Rejected of string | Failed of E.t

type t = {
  eng : Durable.t;
  max_batch : int;
  tel : Telemetry.Tracer.t;
  on_batch : int -> unit;
  q : (op * Phases.cell option * int64 option * (outcome -> unit)) Queue.t;
      (* op, phase vector, trace id, completion *)
  mutable batches : int;
  mutable acked : int;
  mutable gate : (max_seq:int -> fire:(unit -> unit) -> unit) option;
}

let create ?(max_batch = 64) ?(telemetry = Telemetry.Tracer.noop)
    ?(on_batch = fun _ -> ()) eng =
  if max_batch < 1 then invalid_arg "Batcher: max_batch must be >= 1";
  { eng; max_batch; tel = telemetry; on_batch; q = Queue.create (); batches = 0;
    acked = 0; gate = None }

let enqueue t ?cell ?trace op k =
  (match cell with Some c -> Phases.mark c | None -> ());
  Queue.add (op, cell, trace, k) t.q

let pending t = Queue.length t.q

let apply_one eng op =
  let r =
    match op with
    | Insert { key; value; at } -> (
        try Ok (Durable.insert eng ~key ~value ~at) with Invalid_argument m -> Error m)
    | Delete { key; at } -> (
        try Ok (Durable.delete eng ~key ~at) with Invalid_argument m -> Error m)
  in
  match r with
  | Ok (Ok ()) -> Applied (* provisional: awaits the batch sync *)
  | Ok (Error e) -> Failed e
  | Error msg -> Rejected msg

let flush_batch t =
  let n = min t.max_batch (Queue.length t.q) in
  Telemetry.Tracer.with_span t.tel "server.batch"
    ~attrs:(fun () -> [ ("size", Telemetry.Tracer.Int n) ])
  @@ fun () ->
  let items = Array.init n (fun _ -> Queue.pop t.q) in
  let any_cell = Array.exists (fun (_, c, _, _) -> c <> None) items in
  (* Queue wait ends here: the batch has picked the op up.  Everything
     from now to the post-apply timestamp that is not the op's own WAL
     append or tree apply (charged inside the engine) is batch build —
     including time spent applying the op's batch-mates, which the op
     does wait for before its sync. *)
  let t_loop0 = if any_cell then Phases.now_ns () else 0L in
  if any_cell then
    Array.iter
      (fun (_, c, _, _) ->
        match c with Some c -> Phases.charge_mark c Phases.Queue_wait | None -> ())
      items;
  let outcomes =
    Array.map
      (fun (op, cell, trace, _) ->
        Durable.set_phase_cell t.eng cell;
        let o =
          Telemetry.Tracer.with_trace ~trace (fun () -> apply_one t.eng op)
        in
        Durable.set_phase_cell t.eng None;
        o)
      items
  in
  if any_cell then begin
    let loop_ns = Int64.sub (Phases.now_ns ()) t_loop0 in
    Array.iter
      (fun (_, c, _, _) ->
        match c with
        | None -> ()
        | Some c ->
            let own =
              Phases.phase_ns c Phases.Wal_append +. Phases.phase_ns c Phases.Apply
            in
            Phases.add c Phases.Batch_build
              ~ns:(Int64.of_float (max 0. (Int64.to_float loop_ns -. own))))
      items
  end;
  (* One fsync covers every append the batch landed.  If it fails, every
     provisionally applied op must fail too: the records are in the log
     but their durability is unknown, and an ack is a durability claim. *)
  let applied = Array.exists (function Applied -> true | _ -> false) outcomes in
  (if applied then begin
     let t_sync0 = if any_cell then Phases.now_ns () else 0L in
     (match Durable.sync_wal t.eng with
     | Ok () -> ()
     | Error e ->
         Array.iteri
           (fun i o -> match o with Applied -> outcomes.(i) <- Failed e | _ -> ())
           outcomes);
     if any_cell then
       Array.iter
         (fun (_, c, _, _) ->
           match c with Some c -> Phases.charge c Phases.Fsync ~since:t_sync0 | None -> ())
         items
   end);
  t.batches <- t.batches + 1;
  Array.iter (function Applied -> t.acked <- t.acked + 1 | _ -> ()) outcomes;
  t.on_batch n;
  let fire () = Array.iteri (fun i (_, _, _, k) -> k outcomes.(i)) items in
  (* Re-tested after the sync: a failed sync downgraded every Applied to
     Failed, and a batch with nothing durably applied has nothing for a
     replication gate to wait on. *)
  let durably_applied = Array.exists (function Applied -> true | _ -> false) outcomes in
  match t.gate with
  | Some gate when durably_applied ->
      let fire =
        if not any_cell then fire
        else begin
          (* The gap between handing the batch to the replication gate
             and the gate releasing it is the quorum wait. *)
          let t_gate0 = Phases.now_ns () in
          fun () ->
            Array.iter
              (fun (_, c, _, _) ->
                match c with
                | Some c -> Phases.charge c Phases.Quorum_wait ~since:t_gate0
                | None -> ())
              items;
            fire ()
        end
      in
      gate ~max_seq:(Rta.n_updates (Durable.warehouse t.eng)) ~fire
  | _ -> fire ()

let flush t =
  while not (Queue.is_empty t.q) do
    flush_batch t
  done

let batches t = t.batches
let acked t = t.acked
let engine t = t.eng
let set_gate t g = t.gate <- g
