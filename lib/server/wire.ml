module Codec = Storage.Codec

let version = 1
let version_traced = 2
let frame_header_bytes = 8
let max_payload_bytes = 1 lsl 16

(* Tags.  Requests and responses live in disjoint ranges so a stream
   accidentally decoded with the wrong direction fails loudly on the tag,
   not silently as a different message. *)
let tag_query = 1
let tag_insert = 2
let tag_delete = 3
let tag_checkpoint = 4
let tag_stats = 5
let tag_health = 6
let tag_ping = 7
let tag_shutdown = 8
let tag_shard_stats = 9
let tag_wal_subscribe = 10
let tag_wal_ack = 11
let tag_replica_stats = 12
let tag_promote = 13
let tag_vacuum = 14
let tag_observe = 15
let tag_agg = 65
let tag_ack = 66
let tag_err = 67
let tag_stats_reply = 68
let tag_health_reply = 69
let tag_pong = 70
let tag_shard_stats_reply = 71
let tag_sub_ok = 72
let tag_wal_frames = 73
let tag_replica_stats_reply = 74
let tag_vacuum_reply = 75
let tag_observe_reply = 76

type agg = Sum | Count | Avg

type request =
  | Query of { agg : agg; klo : int; khi : int; tlo : int; thi : int }
  | Insert of { key : int; value : int; at : int }
  | Delete of { key : int; at : int }
  | Checkpoint
  | Stats
  | Health
  | Ping
  | Shutdown
  | Shard_stats
  | Wal_subscribe of { epoch : int; from_seq : int }
  | Wal_ack of { epoch : int; seq : int }
  | Replica_stats
  | Promote
  | Vacuum of { horizon : int; max_pages_per_step : int }
  | Observe

type error_code =
  | Bad_request
  | Invalid_request
  | Overloaded
  | Read_only
  | Write_failed
  | Shutting_down
  | Fenced
  | Rebootstrap
  | Below_horizon

let pp_error_code ppf c =
  Format.pp_print_string ppf
    (match c with
    | Bad_request -> "bad-request"
    | Invalid_request -> "invalid-request"
    | Overloaded -> "overloaded"
    | Read_only -> "read-only"
    | Write_failed -> "write-failed"
    | Shutting_down -> "shutting-down"
    | Fenced -> "fenced"
    | Rebootstrap -> "rebootstrap"
    | Below_horizon -> "below-horizon")

type stats = {
  updates : int;
  alive : int;
  pages : int;
  now : int;
  health : Durable.health;
  queue_depth : int;
  in_flight : int;
  conns : int;
  requests : int;
  shed : int;
  batches : int;
  batched_writes : int;
  wal_syncs : int;
  horizon : int;
  pages_reclaimed : int;
  vacuum_steps : int;
}

(* Max shards is 64 ({!Shard.Cluster}), so the largest reply is ~6 KiB —
   comfortably under [max_payload_bytes]. *)
type shard_stat = {
  shard : int;
  s_klo : int;
  s_khi : int;  (* the shard's half-open key range *)
  watermark : int;  (* committed updates published by the writer *)
  reader_watermark : int;  (* min applied across readers; = watermark if none *)
  s_now : int;
  s_alive : int;
  s_queue : int;  (* writer mailbox depth *)
  s_batches : int;
  s_acked : int;
  s_wal_syncs : int;
  s_health : Durable.health;
  s_io_reads : int;
  s_io_writes : int;
  s_io_syncs : int;
}

type role = R_single | R_leader | R_follower

(* Replication counters and watermarks; on a leader [r_durable] is the
   fsync-covered log prefix and [r_followers] the per-subscriber acked
   sequences; on a follower [r_durable] is its own replayed watermark and
   [r_leader_durable] the last watermark heard from upstream. *)
type replica_stats = {
  r_role : role;
  r_epoch : int;
  r_durable : int;
  r_commit : int;  (* replication-acknowledged (client-ackable) watermark *)
  r_leader_durable : int;
  r_lag : int;
  r_frames_shipped : int;
  r_frames_replayed : int;
  r_promotions : int;
  r_followers : (int * int) list;  (* subscriber id, acked seq *)
}

type response =
  | Agg of { sum : int; count : int }
  | Ack
  | Err of { code : error_code; detail : string }
  | Stats_reply of stats
  | Health_reply of Durable.health
  | Pong
  | Shard_stats_reply of shard_stat list
  | Sub_ok of { epoch : int; floor : int; durable : int }
  | Wal_frames of { epoch : int; durable : int; commit : int; frames : bytes list }
  | Replica_stats_reply of replica_stats
  | Vacuum_reply of {
      v_horizon : int;
      v_steps : int;
      v_pages_freed : int;
      v_pages_pruned : int;
      v_records_dropped : int;
    }
  | Observe_reply of string  (* JSON text; schema owned by the server *)

let pp_agg ppf a =
  Format.pp_print_string ppf (match a with Sum -> "sum" | Count -> "count" | Avg -> "avg")

let pp_request ppf = function
  | Query { agg; klo; khi; tlo; thi } ->
      Format.fprintf ppf "query %a [%d,%d)x[%d,%d)" pp_agg agg klo khi tlo thi
  | Insert { key; value; at } -> Format.fprintf ppf "insert key=%d value=%d at=%d" key value at
  | Delete { key; at } -> Format.fprintf ppf "delete key=%d at=%d" key at
  | Checkpoint -> Format.pp_print_string ppf "checkpoint"
  | Stats -> Format.pp_print_string ppf "stats"
  | Health -> Format.pp_print_string ppf "health"
  | Ping -> Format.pp_print_string ppf "ping"
  | Shutdown -> Format.pp_print_string ppf "shutdown"
  | Shard_stats -> Format.pp_print_string ppf "shard-stats"
  | Wal_subscribe { epoch; from_seq } ->
      Format.fprintf ppf "wal-subscribe epoch=%d from=%d" epoch from_seq
  | Wal_ack { epoch; seq } -> Format.fprintf ppf "wal-ack epoch=%d seq=%d" epoch seq
  | Replica_stats -> Format.pp_print_string ppf "replica-stats"
  | Promote -> Format.pp_print_string ppf "promote"
  | Vacuum { horizon; max_pages_per_step } ->
      Format.fprintf ppf "vacuum horizon=%d step=%d" horizon max_pages_per_step
  | Observe -> Format.pp_print_string ppf "observe"

let pp_role ppf r =
  Format.pp_print_string ppf
    (match r with R_single -> "single" | R_leader -> "leader" | R_follower -> "follower")

let pp_shard_stat ppf s =
  Format.fprintf ppf
    "shard %d [%d,%d) watermark=%d reader=%d queue=%d batches=%d acked=%d health=%a"
    s.shard s.s_klo s.s_khi s.watermark s.reader_watermark s.s_queue s.s_batches
    s.s_acked Durable.pp_health s.s_health

let pp_response ppf = function
  | Agg { sum; count } -> Format.fprintf ppf "agg sum=%d count=%d" sum count
  | Ack -> Format.pp_print_string ppf "ack"
  | Err { code; detail } ->
      Format.fprintf ppf "err %a%s" pp_error_code code
        (if detail = "" then "" else " (" ^ detail ^ ")")
  | Stats_reply s ->
      Format.fprintf ppf "stats updates=%d alive=%d health=%a queue=%d shed=%d" s.updates
        s.alive Durable.pp_health s.health s.queue_depth s.shed
  | Health_reply h -> Format.fprintf ppf "health %a" Durable.pp_health h
  | Pong -> Format.pp_print_string ppf "pong"
  | Shard_stats_reply ss -> Format.fprintf ppf "shard-stats n=%d" (List.length ss)
  | Sub_ok { epoch; floor; durable } ->
      Format.fprintf ppf "sub-ok epoch=%d floor=%d durable=%d" epoch floor durable
  | Wal_frames { epoch; durable; commit; frames } ->
      Format.fprintf ppf "wal-frames epoch=%d durable=%d commit=%d n=%d" epoch durable
        commit (List.length frames)
  | Replica_stats_reply r ->
      Format.fprintf ppf "replica-stats role=%a epoch=%d durable=%d commit=%d lag=%d"
        pp_role r.r_role r.r_epoch r.r_durable r.r_commit r.r_lag
  | Vacuum_reply v ->
      Format.fprintf ppf "vacuumed horizon=%d steps=%d freed=%d pruned=%d dropped=%d"
        v.v_horizon v.v_steps v.v_pages_freed v.v_pages_pruned v.v_records_dropped
  | Observe_reply body -> Format.fprintf ppf "observe-reply %d bytes" (String.length body)

let is_write = function Insert _ | Delete _ -> true | _ -> false

(* --- Encoding ----------------------------------------------------------------- *)

(* Error details travel over the network; cap them so a pathological
   Storage_error cannot blow the frame bound. *)
let max_detail_bytes = 512

let agg_code = function Sum -> 0 | Count -> 1 | Avg -> 2
let error_code_u8 = function
  | Bad_request -> 0
  | Invalid_request -> 1
  | Overloaded -> 2
  | Read_only -> 3
  | Write_failed -> 4
  | Shutting_down -> 5
  | Fenced -> 6
  | Rebootstrap -> 7
  | Below_horizon -> 8

let health_u8 = function Durable.Healthy -> 0 | Durable.Degraded -> 1 | Durable.Read_only -> 2
let role_u8 = function R_single -> 0 | R_leader -> 1 | R_follower -> 2

let frame payload =
  let len = Bytes.length payload in
  if len = 0 then invalid_arg "Wire.frame: empty payload";
  if len > max_payload_bytes then invalid_arg "Wire.frame: payload exceeds max_payload_bytes";
  let out = Bytes.create (frame_header_bytes + len) in
  Bytes.set_int32_le out 0 (Int32.of_int len);
  Bytes.set_int32_le out 4 (Int32.of_int (Codec.crc32 payload ~pos:0 ~len));
  Bytes.blit payload 0 out frame_header_bytes len;
  out

(* One payload buffer, exactly sized.  An untraced message is the
   version-1 layout byte for byte ([version, tag, body]); a trace id
   switches the frame to version 2, which interposes the id between the
   version and the tag ([version_traced, trace i64, tag, body]).  Version
   negotiation is per-frame: a v1-only peer simply never sends or
   receives v2 frames, and a traced server answers v1 requests with v1
   responses. *)
let payload ?trace ~tag ~body_bytes fill =
  match trace with
  | None ->
      let w = Codec.Writer.create (2 + body_bytes) in
      Codec.Writer.u8 w version;
      Codec.Writer.u8 w tag;
      fill w;
      frame (Codec.Writer.contents w)
  | Some id ->
      let w = Codec.Writer.create (10 + body_bytes) in
      Codec.Writer.u8 w version_traced;
      Codec.Writer.i64 w (Int64.to_int id);
      Codec.Writer.u8 w tag;
      fill w;
      frame (Codec.Writer.contents w)

let write_string w s =
  Codec.Writer.i32 w (String.length s);
  String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) s

let write_bytes_raw w b = Bytes.iter (fun c -> Codec.Writer.u8 w (Char.code c)) b

let encode_request ?trace req =
  let payload ~tag ~body_bytes fill = payload ?trace ~tag ~body_bytes fill in
  match req with
  | Query { agg; klo; khi; tlo; thi } ->
      payload ~tag:tag_query ~body_bytes:(1 + (4 * 8)) (fun w ->
          Codec.Writer.u8 w (agg_code agg);
          Codec.Writer.i64 w klo;
          Codec.Writer.i64 w khi;
          Codec.Writer.i64 w tlo;
          Codec.Writer.i64 w thi)
  | Insert { key; value; at } ->
      payload ~tag:tag_insert ~body_bytes:(3 * 8) (fun w ->
          Codec.Writer.i64 w key;
          Codec.Writer.i64 w value;
          Codec.Writer.i64 w at)
  | Delete { key; at } ->
      payload ~tag:tag_delete ~body_bytes:(2 * 8) (fun w ->
          Codec.Writer.i64 w key;
          Codec.Writer.i64 w at)
  | Checkpoint -> payload ~tag:tag_checkpoint ~body_bytes:0 ignore
  | Stats -> payload ~tag:tag_stats ~body_bytes:0 ignore
  | Health -> payload ~tag:tag_health ~body_bytes:0 ignore
  | Ping -> payload ~tag:tag_ping ~body_bytes:0 ignore
  | Shutdown -> payload ~tag:tag_shutdown ~body_bytes:0 ignore
  | Shard_stats -> payload ~tag:tag_shard_stats ~body_bytes:0 ignore
  | Wal_subscribe { epoch; from_seq } ->
      payload ~tag:tag_wal_subscribe ~body_bytes:(2 * 8) (fun w ->
          Codec.Writer.i64 w epoch;
          Codec.Writer.i64 w from_seq)
  | Wal_ack { epoch; seq } ->
      payload ~tag:tag_wal_ack ~body_bytes:(2 * 8) (fun w ->
          Codec.Writer.i64 w epoch;
          Codec.Writer.i64 w seq)
  | Replica_stats -> payload ~tag:tag_replica_stats ~body_bytes:0 ignore
  | Promote -> payload ~tag:tag_promote ~body_bytes:0 ignore
  | Vacuum { horizon; max_pages_per_step } ->
      payload ~tag:tag_vacuum ~body_bytes:(2 * 8) (fun w ->
          Codec.Writer.i64 w horizon;
          Codec.Writer.i64 w max_pages_per_step)
  | Observe -> payload ~tag:tag_observe ~body_bytes:0 ignore

let shard_stat_bytes = (14 * 8) + 1

let write_shard_stat w s =
  Codec.Writer.i64 w s.shard;
  Codec.Writer.i64 w s.s_klo;
  Codec.Writer.i64 w s.s_khi;
  Codec.Writer.i64 w s.watermark;
  Codec.Writer.i64 w s.reader_watermark;
  Codec.Writer.i64 w s.s_now;
  Codec.Writer.i64 w s.s_alive;
  Codec.Writer.i64 w s.s_queue;
  Codec.Writer.i64 w s.s_batches;
  Codec.Writer.i64 w s.s_acked;
  Codec.Writer.i64 w s.s_wal_syncs;
  Codec.Writer.u8 w (health_u8 s.s_health);
  Codec.Writer.i64 w s.s_io_reads;
  Codec.Writer.i64 w s.s_io_writes;
  Codec.Writer.i64 w s.s_io_syncs

(* Observe replies carry free-form JSON; leave headroom for the header
   and trace id when capping. *)
let max_observe_bytes = max_payload_bytes - 64

let encode_response ?trace resp =
  let payload ~tag ~body_bytes fill = payload ?trace ~tag ~body_bytes fill in
  match resp with
  | Agg { sum; count } ->
      payload ~tag:tag_agg ~body_bytes:(2 * 8) (fun w ->
          Codec.Writer.i64 w sum;
          Codec.Writer.i64 w count)
  | Ack -> payload ~tag:tag_ack ~body_bytes:0 ignore
  | Err { code; detail } ->
      let detail =
        if String.length detail <= max_detail_bytes then detail
        else String.sub detail 0 max_detail_bytes
      in
      payload ~tag:tag_err ~body_bytes:(1 + 4 + String.length detail) (fun w ->
          Codec.Writer.u8 w (error_code_u8 code);
          write_string w detail)
  | Stats_reply s ->
      payload ~tag:tag_stats_reply ~body_bytes:((15 * 8) + 1) (fun w ->
          Codec.Writer.i64 w s.updates;
          Codec.Writer.i64 w s.alive;
          Codec.Writer.i64 w s.pages;
          Codec.Writer.i64 w s.now;
          Codec.Writer.u8 w (health_u8 s.health);
          Codec.Writer.i64 w s.queue_depth;
          Codec.Writer.i64 w s.in_flight;
          Codec.Writer.i64 w s.conns;
          Codec.Writer.i64 w s.requests;
          Codec.Writer.i64 w s.shed;
          Codec.Writer.i64 w s.batches;
          Codec.Writer.i64 w s.batched_writes;
          Codec.Writer.i64 w s.wal_syncs;
          Codec.Writer.i64 w s.horizon;
          Codec.Writer.i64 w s.pages_reclaimed;
          Codec.Writer.i64 w s.vacuum_steps)
  | Health_reply h ->
      payload ~tag:tag_health_reply ~body_bytes:1 (fun w -> Codec.Writer.u8 w (health_u8 h))
  | Pong -> payload ~tag:tag_pong ~body_bytes:0 ignore
  | Shard_stats_reply ss ->
      let n = List.length ss in
      payload ~tag:tag_shard_stats_reply
        ~body_bytes:(4 + (n * shard_stat_bytes))
        (fun w ->
          Codec.Writer.i32 w n;
          List.iter (write_shard_stat w) ss)
  | Sub_ok { epoch; floor; durable } ->
      payload ~tag:tag_sub_ok ~body_bytes:(3 * 8) (fun w ->
          Codec.Writer.i64 w epoch;
          Codec.Writer.i64 w floor;
          Codec.Writer.i64 w durable)
  | Wal_frames { epoch; durable; commit; frames } ->
      (* Each shipped record keeps the WAL's own CRC framing (len, crc,
         payload) inside the message, on top of the message-level frame
         CRC — a follower re-checks every record before replaying it. *)
      let body =
        (3 * 8) + 4 + List.fold_left (fun a f -> a + 8 + Bytes.length f) 0 frames
      in
      payload ~tag:tag_wal_frames ~body_bytes:body (fun w ->
          Codec.Writer.i64 w epoch;
          Codec.Writer.i64 w durable;
          Codec.Writer.i64 w commit;
          Codec.Writer.i32 w (List.length frames);
          List.iter
            (fun f ->
              let len = Bytes.length f in
              Codec.Writer.i32 w len;
              (* Store the unsigned CRC through its signed 32-bit image;
                 the decoder masks it back. *)
              Codec.Writer.i32 w (Int32.to_int (Int32.of_int (Codec.crc32 f ~pos:0 ~len)));
              write_bytes_raw w f)
            frames)
  | Replica_stats_reply r ->
      let n = List.length r.r_followers in
      payload ~tag:tag_replica_stats_reply
        ~body_bytes:(1 + (8 * 8) + 4 + (n * 16))
        (fun w ->
          Codec.Writer.u8 w (role_u8 r.r_role);
          Codec.Writer.i64 w r.r_epoch;
          Codec.Writer.i64 w r.r_durable;
          Codec.Writer.i64 w r.r_commit;
          Codec.Writer.i64 w r.r_leader_durable;
          Codec.Writer.i64 w r.r_lag;
          Codec.Writer.i64 w r.r_frames_shipped;
          Codec.Writer.i64 w r.r_frames_replayed;
          Codec.Writer.i64 w r.r_promotions;
          Codec.Writer.i32 w n;
          List.iter
            (fun (id, acked) ->
              Codec.Writer.i64 w id;
              Codec.Writer.i64 w acked)
            r.r_followers)
  | Vacuum_reply v ->
      payload ~tag:tag_vacuum_reply ~body_bytes:(5 * 8) (fun w ->
          Codec.Writer.i64 w v.v_horizon;
          Codec.Writer.i64 w v.v_steps;
          Codec.Writer.i64 w v.v_pages_freed;
          Codec.Writer.i64 w v.v_pages_pruned;
          Codec.Writer.i64 w v.v_records_dropped)
  | Observe_reply body ->
      let body =
        if String.length body <= max_observe_bytes then body
        else String.sub body 0 max_observe_bytes
      in
      payload ~tag:tag_observe_reply ~body_bytes:(4 + String.length body) (fun w ->
          write_string w body)

(* --- Decoding ----------------------------------------------------------------- *)

type error =
  | Oversized of int
  | Bad_length of int
  | Bad_crc
  | Unknown_version of int
  | Unknown_tag of int
  | Bad_payload of string

let pp_error ppf = function
  | Oversized n -> Format.fprintf ppf "oversized frame (%d bytes)" n
  | Bad_length n -> Format.fprintf ppf "bad frame length (%d)" n
  | Bad_crc -> Format.pp_print_string ppf "frame checksum mismatch"
  | Unknown_version v -> Format.fprintf ppf "unknown protocol version %d" v
  | Unknown_tag t -> Format.fprintf ppf "unknown message tag %d" t
  | Bad_payload why -> Format.fprintf ppf "bad payload: %s" why

type 'a decoded = Complete of 'a * int | Incomplete | Fail of error

exception Reject of error

let agg_of_code = function
  | 0 -> Sum
  | 1 -> Count
  | 2 -> Avg
  | n -> raise (Reject (Bad_payload (Printf.sprintf "unknown aggregate code %d" n)))

let error_code_of_u8 = function
  | 0 -> Bad_request
  | 1 -> Invalid_request
  | 2 -> Overloaded
  | 3 -> Read_only
  | 4 -> Write_failed
  | 5 -> Shutting_down
  | 6 -> Fenced
  | 7 -> Rebootstrap
  | 8 -> Below_horizon
  | n -> raise (Reject (Bad_payload (Printf.sprintf "unknown error code %d" n)))

let role_of_u8 = function
  | 0 -> R_single
  | 1 -> R_leader
  | 2 -> R_follower
  | n -> raise (Reject (Bad_payload (Printf.sprintf "unknown role code %d" n)))

let health_of_u8 = function
  | 0 -> Durable.Healthy
  | 1 -> Durable.Degraded
  | 2 -> Durable.Read_only
  | n -> raise (Reject (Bad_payload (Printf.sprintf "unknown health code %d" n)))

let read_string rd ~remaining =
  let len = Codec.Reader.i32 rd in
  if len < 0 || len > remaining then
    raise (Reject (Bad_payload (Printf.sprintf "string length %d out of range" len)));
  String.init len (fun _ -> Char.chr (Codec.Reader.u8 rd))

let decode_body_request rd ~len tag =
  match tag with
  | t when t = tag_query ->
      let agg = agg_of_code (Codec.Reader.u8 rd) in
      let klo = Codec.Reader.i64 rd in
      let khi = Codec.Reader.i64 rd in
      let tlo = Codec.Reader.i64 rd in
      let thi = Codec.Reader.i64 rd in
      Query { agg; klo; khi; tlo; thi }
  | t when t = tag_insert ->
      let key = Codec.Reader.i64 rd in
      let value = Codec.Reader.i64 rd in
      let at = Codec.Reader.i64 rd in
      Insert { key; value; at }
  | t when t = tag_delete ->
      let key = Codec.Reader.i64 rd in
      let at = Codec.Reader.i64 rd in
      Delete { key; at }
  | t when t = tag_checkpoint -> Checkpoint
  | t when t = tag_stats -> Stats
  | t when t = tag_health -> Health
  | t when t = tag_ping -> Ping
  | t when t = tag_shutdown -> Shutdown
  | t when t = tag_shard_stats -> Shard_stats
  | t when t = tag_wal_subscribe ->
      let epoch = Codec.Reader.i64 rd in
      let from_seq = Codec.Reader.i64 rd in
      Wal_subscribe { epoch; from_seq }
  | t when t = tag_wal_ack ->
      let epoch = Codec.Reader.i64 rd in
      let seq = Codec.Reader.i64 rd in
      Wal_ack { epoch; seq }
  | t when t = tag_replica_stats -> Replica_stats
  | t when t = tag_promote -> Promote
  | t when t = tag_vacuum ->
      let horizon = Codec.Reader.i64 rd in
      let max_pages_per_step = Codec.Reader.i64 rd in
      Vacuum { horizon; max_pages_per_step }
  | t when t = tag_observe -> Observe
  | t ->
      ignore len;
      raise (Reject (Unknown_tag t))

let decode_body_response rd ~len tag =
  match tag with
  | t when t = tag_agg ->
      let sum = Codec.Reader.i64 rd in
      let count = Codec.Reader.i64 rd in
      Agg { sum; count }
  | t when t = tag_ack -> Ack
  | t when t = tag_err ->
      let code = error_code_of_u8 (Codec.Reader.u8 rd) in
      let detail = read_string rd ~remaining:(len - Codec.Reader.pos rd) in
      Err { code; detail }
  | t when t = tag_stats_reply ->
      let updates = Codec.Reader.i64 rd in
      let alive = Codec.Reader.i64 rd in
      let pages = Codec.Reader.i64 rd in
      let now = Codec.Reader.i64 rd in
      let health = health_of_u8 (Codec.Reader.u8 rd) in
      let queue_depth = Codec.Reader.i64 rd in
      let in_flight = Codec.Reader.i64 rd in
      let conns = Codec.Reader.i64 rd in
      let requests = Codec.Reader.i64 rd in
      let shed = Codec.Reader.i64 rd in
      let batches = Codec.Reader.i64 rd in
      let batched_writes = Codec.Reader.i64 rd in
      let wal_syncs = Codec.Reader.i64 rd in
      let horizon = Codec.Reader.i64 rd in
      let pages_reclaimed = Codec.Reader.i64 rd in
      let vacuum_steps = Codec.Reader.i64 rd in
      Stats_reply
        { updates; alive; pages; now; health; queue_depth; in_flight; conns; requests;
          shed; batches; batched_writes; wal_syncs; horizon; pages_reclaimed;
          vacuum_steps }
  | t when t = tag_health_reply -> Health_reply (health_of_u8 (Codec.Reader.u8 rd))
  | t when t = tag_pong -> Pong
  | t when t = tag_shard_stats_reply ->
      let n = Codec.Reader.i32 rd in
      let remaining = len - Codec.Reader.pos rd in
      if n < 0 || n * shard_stat_bytes <> remaining then
        raise
          (Reject
             (Bad_payload
                (Printf.sprintf "shard-stats count %d does not match body size" n)));
      Shard_stats_reply
        (List.init n (fun _ ->
             let shard = Codec.Reader.i64 rd in
             let s_klo = Codec.Reader.i64 rd in
             let s_khi = Codec.Reader.i64 rd in
             let watermark = Codec.Reader.i64 rd in
             let reader_watermark = Codec.Reader.i64 rd in
             let s_now = Codec.Reader.i64 rd in
             let s_alive = Codec.Reader.i64 rd in
             let s_queue = Codec.Reader.i64 rd in
             let s_batches = Codec.Reader.i64 rd in
             let s_acked = Codec.Reader.i64 rd in
             let s_wal_syncs = Codec.Reader.i64 rd in
             let s_health = health_of_u8 (Codec.Reader.u8 rd) in
             let s_io_reads = Codec.Reader.i64 rd in
             let s_io_writes = Codec.Reader.i64 rd in
             let s_io_syncs = Codec.Reader.i64 rd in
             {
               shard; s_klo; s_khi; watermark; reader_watermark; s_now; s_alive;
               s_queue; s_batches; s_acked; s_wal_syncs; s_health; s_io_reads;
               s_io_writes; s_io_syncs;
             }))
  | t when t = tag_sub_ok ->
      let epoch = Codec.Reader.i64 rd in
      let floor = Codec.Reader.i64 rd in
      let durable = Codec.Reader.i64 rd in
      Sub_ok { epoch; floor; durable }
  | t when t = tag_wal_frames ->
      let epoch = Codec.Reader.i64 rd in
      let durable = Codec.Reader.i64 rd in
      let commit = Codec.Reader.i64 rd in
      let n = Codec.Reader.i32 rd in
      if n < 0 || n > len then
        raise (Reject (Bad_payload (Printf.sprintf "frame count %d out of range" n)));
      let frames =
        List.init n (fun _ ->
            let flen = Codec.Reader.i32 rd in
            if flen <= 0 || flen > len - Codec.Reader.pos rd then
              raise
                (Reject (Bad_payload (Printf.sprintf "record length %d out of range" flen)));
            let crc = Codec.Reader.i32 rd land 0xFFFFFFFF in
            let b = Bytes.init flen (fun _ -> Char.chr (Codec.Reader.u8 rd)) in
            if Codec.crc32 b ~pos:0 ~len:flen <> crc then
              raise (Reject (Bad_payload "record checksum mismatch inside wal-frames"));
            b)
      in
      Wal_frames { epoch; durable; commit; frames }
  | t when t = tag_replica_stats_reply ->
      let r_role = role_of_u8 (Codec.Reader.u8 rd) in
      let r_epoch = Codec.Reader.i64 rd in
      let r_durable = Codec.Reader.i64 rd in
      let r_commit = Codec.Reader.i64 rd in
      let r_leader_durable = Codec.Reader.i64 rd in
      let r_lag = Codec.Reader.i64 rd in
      let r_frames_shipped = Codec.Reader.i64 rd in
      let r_frames_replayed = Codec.Reader.i64 rd in
      let r_promotions = Codec.Reader.i64 rd in
      let n = Codec.Reader.i32 rd in
      let remaining = len - Codec.Reader.pos rd in
      if n < 0 || n * 16 <> remaining then
        raise
          (Reject
             (Bad_payload
                (Printf.sprintf "follower count %d does not match body size" n)));
      let r_followers =
        List.init n (fun _ ->
            let id = Codec.Reader.i64 rd in
            let acked = Codec.Reader.i64 rd in
            (id, acked))
      in
      Replica_stats_reply
        { r_role; r_epoch; r_durable; r_commit; r_leader_durable; r_lag;
          r_frames_shipped; r_frames_replayed; r_promotions; r_followers }
  | t when t = tag_vacuum_reply ->
      let v_horizon = Codec.Reader.i64 rd in
      let v_steps = Codec.Reader.i64 rd in
      let v_pages_freed = Codec.Reader.i64 rd in
      let v_pages_pruned = Codec.Reader.i64 rd in
      let v_records_dropped = Codec.Reader.i64 rd in
      Vacuum_reply { v_horizon; v_steps; v_pages_freed; v_pages_pruned; v_records_dropped }
  | t when t = tag_observe_reply ->
      Observe_reply (read_string rd ~remaining:(len - Codec.Reader.pos rd - 4))
  | t -> raise (Reject (Unknown_tag t))

(* The shared total decoder: validate the length prefix before any
   allocation, the checksum before any interpretation, the version before
   the tag.  [Codec.Reader] bounds every field read to the copied payload,
   so a lying body cannot reach bytes of the next frame; its [Overflow]
   (and any Reject) surfaces as a typed failure. *)
let decode decode_body ~buf ~pos ~avail =
  if pos < 0 || avail < 0 || pos + avail > Bytes.length buf then
    Fail (Bad_payload "window outside buffer")
  else if avail < frame_header_bytes then Incomplete
  else begin
    let len = Int32.to_int (Bytes.get_int32_le buf pos) in
    if len > max_payload_bytes then Fail (Oversized len)
    else if len < 2 then Fail (Bad_length len)
    else if avail < frame_header_bytes + len then Incomplete
    else begin
      let crc = Int32.to_int (Bytes.get_int32_le buf (pos + 4)) land 0xFFFFFFFF in
      if Codec.crc32 buf ~pos:(pos + frame_header_bytes) ~len <> crc then Fail Bad_crc
      else begin
        let body = Bytes.sub buf (pos + frame_header_bytes) len in
        let rd = Codec.Reader.create body in
        match
          let v = Codec.Reader.u8 rd in
          let trace =
            if v = version then None
            else if v = version_traced then Some (Int64.of_int (Codec.Reader.i64 rd))
            else raise (Reject (Unknown_version v))
          in
          let tag = Codec.Reader.u8 rd in
          let msg = decode_body rd ~len tag in
          if Codec.Reader.pos rd <> len then
            raise (Reject (Bad_payload "trailing bytes after message"));
          (msg, trace)
        with
        | msg -> Complete (msg, frame_header_bytes + len)
        | exception Reject e -> Fail e
        | exception Codec.Overflow _ -> Fail (Bad_payload "payload ended early")
      end
    end
  end

let decode_request_traced ~buf ~pos ~avail = decode decode_body_request ~buf ~pos ~avail
let decode_response_traced ~buf ~pos ~avail = decode decode_body_response ~buf ~pos ~avail

let drop_trace = function
  | Complete ((msg, _trace), used) -> Complete (msg, used)
  | Incomplete -> Incomplete
  | Fail e -> Fail e

let decode_request ~buf ~pos ~avail = drop_trace (decode_request_traced ~buf ~pos ~avail)
let decode_response ~buf ~pos ~avail = drop_trace (decode_response_traced ~buf ~pos ~avail)
