(** Group commit: turn per-request fsync cost into per-batch cost.

    The classic WAL contract — fsync before acknowledging — makes the
    fsync the unit cost of every write.  Group commit amortises it: the
    server queues the writes that arrive close together, applies them to
    the engine back to back (each one logged by {!Durable.insert}/
    [delete] but {e not} individually fsynced — the engine runs under
    [Wal.Never]), then issues {e one} {!Durable.sync_wal} for the whole
    batch and only then completes every callback.

    The durability contract is unchanged from per-request fsync: a
    request whose callback sees {!Applied} is on disk — its batch's WAL
    sync returned before the ack.  What a crash can lose is only work
    that was never acknowledged.

    Failure semantics inside a batch:
    - a precondition violation ({!Rejected}) skips that one op, the rest
      of the batch proceeds;
    - a failed log append flips the engine read-only; that op {!Failed}
      and every later write in the batch fails with [Read_only_store];
    - a failed batch sync fails {e every} op the batch had applied (they
      were logged but their durability is unknown — nothing is acked)
      and the engine goes read-only. *)

type op =
  | Insert of { key : int; value : int; at : int }
  | Delete of { key : int; at : int }

type outcome =
  | Applied  (** Logged, applied, and covered by a returned WAL sync. *)
  | Rejected of string
      (** Precondition violation — the engine state is untouched. *)
  | Failed of Storage.Storage_error.t
      (** I/O failure on the append or the batch sync; not acknowledged
          (and if the append failed, not logged either). *)

type t

val create :
  ?max_batch:int ->
  ?telemetry:Telemetry.Tracer.t ->
  ?on_batch:(int -> unit) ->
  Durable.t ->
  t
(** [max_batch] (default 64) caps how many writes one sync covers; a
    longer queue is drained as several batches.  [on_batch] is called
    with each batch's size after its commit (the server feeds a
    histogram).  The engine should be opened with [sync_policy:Wal.Never]
    — under any other policy the batcher still works, the engine's own
    policy just issues additional syncs inside the batch. *)

val enqueue :
  t -> ?cell:Telemetry.Phases.cell -> ?trace:int64 -> op -> (outcome -> unit) -> unit
(** Queue one write.  The callback runs from {!flush}, after the batch
    containing the op has committed (or failed).  [cell] is the request's
    phase vector: the batcher charges its queue wait, batch build, WAL
    append, fsync share, and replication-quorum wait to it.  [trace] is
    re-installed as the ambient trace id around the op's engine apply, so
    [durable.insert] spans carry the originating request's id. *)

val pending : t -> int

val flush : t -> unit
(** Drain the whole queue as one or more batches.  Callbacks run in
    enqueue order.  Emits a [server.batch] span per batch. *)

val batches : t -> int

val acked : t -> int
(** Ops whose outcome was {!Applied}. *)

val engine : t -> Durable.t

val set_gate : t -> (max_seq:int -> fire:(unit -> unit) -> unit) option -> unit
(** Replication ack gate.  With a gate installed, a batch that durably
    applied at least one write does {e not} run its callbacks from
    {!flush}; instead the gate receives the engine's post-batch update
    count ([max_seq]) and a [fire] thunk that runs them.  A semi-sync
    replication hub holds [fire] until enough followers have acknowledged
    [max_seq], so a client ack then certifies durability on leader {e
    and} replicas.  Batches with no durable write (all rejected or
    failed) bypass the gate — there is nothing to replicate.  [fire] must
    be called exactly once, from the same event-loop thread. *)
