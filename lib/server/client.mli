(** Blocking client for the {!Wire} protocol — used by the tests, the
    bench harness, and [rta_cli netbench].

    The client is deliberately simple: one connection, blocking writes
    and reads.  {!send} and {!recv} are split so a caller can pipeline —
    send a window of requests, then collect the window of responses; the
    server answers strictly in request order, so matching is positional.
    {!call} is the one-shot convenience.

    {2 Timeouts and reconnection}

    Without [timeout], every operation blocks indefinitely — a dead or
    wedged peer blocks the client forever.  With [timeout], connecting
    (non-blocking connect + [select]) and each blocking read or write
    ([SO_RCVTIMEO]/[SO_SNDTIMEO]) is bounded and raises the typed
    {!Timeout} instead.

    A client built from an endpoint ({!connect_unix}/{!connect_tcp})
    additionally retries {e once}, after [backoff] seconds, when a
    {!send} hits a closed peer before any byte of the request reached
    the socket and no response is owed — the stale-pooled-connection
    case, where retrying cannot double-apply anything.  Failures past
    that single attempt, or at any less safe point, surface as
    {!Connection_closed}. *)

type t

exception Connection_closed
(** The peer closed the stream while a response was still owed. *)

exception Protocol_error of Wire.error
(** The response stream failed to decode; the connection is unusable. *)

exception Timeout of string
(** An operation exceeded the configured [timeout]; the argument names
    it ("connect", "send", "receive").  The connection may have a partial
    frame in flight and should be closed. *)

val connect_unix : ?timeout:float -> ?backoff:float -> path:string -> unit -> t
val connect_tcp : ?timeout:float -> ?backoff:float -> ?host:string -> port:int -> unit -> t
(** Default host 127.0.0.1; [timeout] in seconds bounds connect and each
    subsequent blocking operation (default: block forever); [backoff]
    (default 0.05 s) is the delay before the single reconnect attempt. *)

val reconnect : t -> unit
(** Close and re-establish the connection to the original endpoint after
    [backoff] seconds, discarding any buffered response bytes.
    @raise Connection_closed on a client wrapping a raw fd. *)

val reconnects : t -> int
(** Reconnections performed over this client's life. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The underlying socket — for [select]-based callers and for tests
    that need to write raw bytes past the codec. *)

val send : ?trace:int64 -> t -> Wire.request -> unit
(** Write one framed request (complete, blocking).  With [trace] — or,
    absent that, an ambient {!Telemetry.Tracer.with_trace} id — the
    request goes out as a v2 traced frame and the server tags every span
    and phase sample it causes, across processes, with that id. *)

val recv : t -> Wire.response
(** Block until the next complete response frame.
    @raise Connection_closed on EOF mid-stream.
    @raise Protocol_error on an undecodable frame. *)

val call : ?trace:int64 -> t -> Wire.request -> Wire.response
(** [send] then [recv]. *)

(** {1 Conveniences} — thin wrappers over {!call}. *)

val ping : t -> bool
(** [true] iff the server answered [Pong]. *)

val insert : t -> key:int -> value:int -> at:int -> Wire.response
val delete : t -> key:int -> at:int -> Wire.response

val query :
  t -> agg:Wire.agg -> klo:int -> khi:int -> tlo:int -> thi:int -> Wire.response

val checkpoint : t -> Wire.response
val stats : t -> Wire.stats option

(** Per-shard rows; a single-engine server reports one row covering the
    whole key domain. *)
val shard_stats : t -> Wire.shard_stat list option
val health : t -> Durable.health option
val shutdown : t -> Wire.response

val replica_stats : t -> Wire.replica_stats option
val promote : t -> Wire.response

val vacuum : ?max_pages_per_step:int -> t -> horizon:int -> Wire.response
(** Raise the retention horizon and reclaim dead pages online.
    [max_pages_per_step] 0 (the default) lets the server pick. *)

val observe : t -> string option
(** The server's live observability document (JSON): health, per-shard
    watermark lag and snapshot age, replication lag per follower, phase
    summaries, flight-recorder state. *)
