(** Blocking client for the {!Wire} protocol — used by the tests, the
    bench harness, and [rta_cli netbench].

    The client is deliberately simple: one connection, blocking writes
    and reads, no timeouts.  {!send} and {!recv} are split so a caller
    can pipeline — send a window of requests, then collect the window of
    responses; the server answers strictly in request order, so matching
    is positional.  {!call} is the one-shot convenience. *)

type t

exception Connection_closed
(** The peer closed the stream while a response was still owed. *)

exception Protocol_error of Wire.error
(** The response stream failed to decode; the connection is unusable. *)

val connect_unix : path:string -> t
val connect_tcp : ?host:string -> port:int -> unit -> t
(** Default host 127.0.0.1. *)

val close : t -> unit

val fd : t -> Unix.file_descr
(** The underlying socket — for [select]-based callers and for tests
    that need to write raw bytes past the codec. *)

val send : t -> Wire.request -> unit
(** Write one framed request (complete, blocking). *)

val recv : t -> Wire.response
(** Block until the next complete response frame.
    @raise Connection_closed on EOF mid-stream.
    @raise Protocol_error on an undecodable frame. *)

val call : t -> Wire.request -> Wire.response
(** [send] then [recv]. *)

(** {1 Conveniences} — thin wrappers over {!call}. *)

val ping : t -> bool
(** [true] iff the server answered [Pong]. *)

val insert : t -> key:int -> value:int -> at:int -> Wire.response
val delete : t -> key:int -> at:int -> Wire.response

val query :
  t -> agg:Wire.agg -> klo:int -> khi:int -> tlo:int -> thi:int -> Wire.response

val checkpoint : t -> Wire.response
val stats : t -> Wire.stats option

(** Per-shard rows; a single-engine server reports one row covering the
    whole key domain. *)
val shard_stats : t -> Wire.shard_stat list option
val health : t -> Durable.health option
val shutdown : t -> Wire.response
