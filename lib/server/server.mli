(** The query service: a [Unix.select] event loop serving the {!Wire}
    protocol over a durable RTA engine — either a single engine or a
    {!Shard.Cluster} of writer/reader domains.

    One single-threaded loop owns the network: the listening socket,
    every connection's read/write state machine, and the {!Admission}
    gate — so no locks on connection state, and a natural batching
    boundary: all the writes that arrive within one loop iteration
    commit under one WAL sync.

    With a {e single} engine ({!create}) the loop also owns the
    group-commit {!Batcher} and executes queries inline.  With a
    {e sharded} backend ({!create_sharded}) requests are submitted to the
    cluster's writer/reader domains; their completion callbacks fill the
    reserved response slots when the loop calls [Shard.Cluster.drain]
    (the cluster's wake pipe sits in the [select] read set, so the loop
    sleeps until either a socket or a completion is ready).  Response
    ordering, backpressure, and drain semantics are identical in both
    modes.

    Per iteration ({!step}):

    + [select] on the listener (while accepting), every readable
      connection that is not backpressured, and every connection with
      pending output;
    + accept new connections (non-blocking);
    + read and decode frames; admitted queries execute immediately,
      admitted writes queue in the batcher, everything refused gets its
      typed error response at once.  A connection that sends an
      undecodable frame is answered with [Bad_request] and closed after
      the response flushes (framing can no longer be trusted);
    + flush the batcher — the group commit — completing every write
      response;
    + write out response bytes (non-blocking, partial writes carried to
      the next iteration).

    {2 Ordering}

    Responses go back to each connection strictly in request order, even
    though a query answered mid-iteration completes before a write
    waiting on the batch sync: each request reserves a response slot at
    decode time and the writer only flushes the filled prefix.

    {2 Backpressure}

    A connection whose pending output exceeds [high_water] stops being
    {e read} until the client drains it — a client that pipelines
    without reading responses stalls itself, not the server.

    {2 Shutdown}

    {!request_shutdown} (or a wire [Shutdown] request) starts the drain:
    stop accepting, answer requests already received, flush every
    connection, then {!step} returns [false] and {!run} returns.  The
    serve CLI maps SIGTERM/SIGINT to exactly this, so a deployed server
    exits 0 with every acknowledged write durable. *)

type config = {
  max_in_flight : int;  (** {!Admission} in-flight cap (default 1024). *)
  max_queue_depth : int;  (** {!Admission} write-queue cap (default 256). *)
  max_batch : int;  (** {!Batcher} writes per WAL sync (default 64). *)
  high_water : int;
      (** Per-connection pending-output bytes beyond which reads pause
          (default 256 KiB). *)
  sim_io_ns : int;
      (** Simulated device latency charged per page touched on the
          single-engine query path (default 0 = off) — the same knob as
          {!Shard.Cluster.config.sim_io_ns}, for benchmarking read
          scaling across follower replicas under an I/O-bound load. *)
}

val default_config : config

type t

val listen_unix : path:string -> Unix.file_descr
(** Bind and listen on a Unix-domain socket, removing a stale socket
    file at [path] first.  @raise Unix.Unix_error on bind failure. *)

val listen_tcp : ?host:string -> port:int -> unit -> Unix.file_descr * int
(** Bind and listen on TCP [host:port] (default host 127.0.0.1);
    returns the bound port (useful with [port:0]). *)

val create :
  ?config:config ->
  ?telemetry:Telemetry.Tracer.t ->
  ?metrics:Telemetry.Metrics.t ->
  engine:Durable.t ->
  listen:Unix.file_descr ->
  unit ->
  t
(** Wrap a listening socket and an engine into a server.  The engine
    should be opened with [sync_policy:Wal.Never] so the batcher's sync
    is the only fsync per batch (see {!Batcher}).  Registers a
    {!Durable.on_health_change} hook so a read-only transition flips
    write rejection immediately.  [metrics] (default a private registry)
    receives [server_*] counters, the queue-depth gauge, and the
    batch-size histogram; [telemetry] emits [server.request] /
    [server.batch] spans. *)

val create_sharded :
  ?config:config ->
  ?telemetry:Telemetry.Tracer.t ->
  ?metrics:Telemetry.Metrics.t ->
  cluster:Shard.Cluster.t ->
  listen:Unix.file_descr ->
  unit ->
  t
(** Serve a {!Shard.Cluster} instead of a single engine.  The caller
    owns the cluster's lifecycle: create it first, and call
    [Shard.Cluster.shutdown] after {!run} returns.  [config.max_batch]
    is ignored (each shard batches by its own [Cluster] config).  There
    is no admission-level read-only gate — shard health is per shard, so
    writes to a degraded shard bounce with its typed error while healthy
    shards keep accepting. *)

val step : t -> timeout:float -> bool
(** One event-loop iteration, blocking in [select] at most [timeout]
    seconds.  Returns [false] once the server has fully drained after a
    shutdown request — the loop is over, every socket closed.  Exposed
    so tests can single-step the server deterministically against
    in-process clients. *)

val run : t -> unit
(** [while step t ~timeout:1.0 do () done] — serve until shutdown. *)

val request_shutdown : t -> unit
(** Begin the drain; safe to call from a signal handler. *)

val shutting_down : t -> bool
val connections : t -> int
val requests : t -> int

val engine : t -> Durable.t
(** The single backend engine.
    @raise Invalid_argument on a sharded server. *)

val batcher : t -> Batcher.t
(** The single backend's group-commit batcher.
    @raise Invalid_argument on a sharded server. *)

val cluster : t -> Shard.Cluster.t option
(** The sharded backend, if this server was built with
    {!create_sharded}. *)

val admission : t -> Admission.t
val metrics : t -> Telemetry.Metrics.t

val telemetry : t -> Telemetry.Tracer.t

(** {2 Observability}

    {!enable_phases} turns on per-request phase accounting: every
    admitted Query/Insert/Delete carries a {!Telemetry.Phases.cell}
    charged stage by stage (decode, admission wait, queue wait, batch
    build, WAL append, fsync share, replication-quorum wait, engine
    apply, reply flush) and finished into the recorder's histograms when
    its response bytes reach the socket.  The wire [Observe] request —
    and {!observe_json} for in-process consumers like the metrics HTTP
    endpoint — answers with one JSON document of live gauges: per-shard
    watermark/reader lag and snapshot age, queue depths, retention
    horizon distance, disk pressure, the phase summary, flight-recorder
    state, and extension-contributed fields. *)

val enable_phases : t -> Telemetry.Phases.recorder -> unit

val phase_recorder : t -> Telemetry.Phases.recorder option

val set_flight : t -> Telemetry.Flight.t -> unit
(** Register the process flight recorder so [Observe] reports its dump
    count and ring occupancy. *)

val flight : t -> Telemetry.Flight.t option

val set_observe_extra : t -> (unit -> (string * Telemetry.Json.t) list) -> unit
(** Extra top-level fields merged into the [Observe] document — the
    replication extension reports its role and follower lag here. *)

val last_write_trace : t -> int64 option
(** Trace id of the most recent traced write accepted by this server.
    The replication hub stamps outgoing WAL-frame pushes with it so a
    tagged write's shipping and follower replay join its trace. *)

val observe_json : t -> string
(** The [Observe] reply document (also served to wire requests). *)

(** {2 Loop extension}

    How {!Replica} plugs replication into the event loop without the
    server knowing its semantics: an extension claims the replication
    opcodes ([Wal_subscribe] / [Wal_ack] / [Replica_stats] / [Promote]),
    a per-iteration tick ships WAL frames, watched fds put a follower's
    upstream socket into the [select] read set, and a close hook
    reclaims subscriber state.  Without an extension the replication
    opcodes are answered with [Err Invalid_request]. *)

(** The extension's view of the connection a replication request arrived
    on. *)
type ext_ctx = {
  ext_conn : int;
      (** Connection id — stable for the connection's life, never
          reused by this server. *)
  ext_push : bytes -> unit;
      (** Stage pre-encoded frame bytes on this connection, out of band
          of the request/response slot queue.  No-op once the connection
          is dead. *)
  ext_pending : unit -> int;
      (** Unflushed output bytes on this connection — the flow-control
          signal for pacing pushed frames. *)
}

(** What the extension did with a replication request. *)
type ext_outcome =
  | Ext_reply of Wire.response  (** Answer in order, like any request. *)
  | Ext_subscribe of Wire.response
      (** Answer {e and} mark the connection a subscription: the reply is
          staged immediately (ahead of any pushed frame), the high-water
          read pause no longer applies, and subsequent non-replication
          requests on it are rejected. *)
  | Ext_silent  (** No response ([Wal_ack] is fire-and-forget). *)
  | Ext_pass  (** Not handled — the server answers [Err Invalid_request]. *)

val set_extension : t -> (ext_ctx -> Wire.request -> ext_outcome) -> unit
(** Install the replication request handler.  Called from the event loop
    for every replication opcode while the server is accepting (during a
    drain they are answered [Shutting_down] without consulting it). *)

val set_tick : t -> (unit -> unit) -> unit
(** Called once per {!step}, after the group commit (new WAL records are
    durable and shippable, gate callbacks have run) and before responses
    are pumped and written — anything the tick fills or pushes flushes
    within the same step. *)

val on_conn_close : t -> (int -> unit) -> unit
(** Called with the connection id whenever a connection dies, however it
    dies — the extension drops the matching subscriber. *)

val add_watch : t -> Unix.file_descr -> (unit -> unit) -> unit
(** Put [fd] in the loop's [select] read set and run the callback when
    it is readable — how a follower's upstream socket shares the loop
    with served connections.  Re-adding an fd replaces its callback. *)

val remove_watch : t -> Unix.file_descr -> unit

val stats : t -> Wire.stats
(** The snapshot served to wire [Stats] requests; on a sharded server
    the engine-level fields are the cluster totals. *)

val shard_stats : t -> Wire.shard_stat list
(** The per-shard rows served to wire [Shard_stats] requests; a single
    backend reports itself as one shard covering the whole key domain. *)
