type config = { max_in_flight : int; max_queue_depth : int }

let default_config = { max_in_flight = 1024; max_queue_depth = 256 }

type t = {
  cfg : config;
  mutable in_flight : int;
  mutable shed : int;
  mutable rejected_ro : int;
  mutable read_only : bool;
  mutable standby : bool;
}

let create ?(config = default_config) () =
  if config.max_in_flight < 1 then invalid_arg "Admission: max_in_flight must be >= 1";
  if config.max_queue_depth < 1 then invalid_arg "Admission: max_queue_depth must be >= 1";
  { cfg = config; in_flight = 0; shed = 0; rejected_ro = 0; read_only = false;
    standby = false }

type decision = Admit | Shed | Reject_read_only

(* Order matters: read-only rejection is checked before the load limits —
   a degraded store answers its writes with the truthful [Read_only]
   even under load, and rejected writes never consume in-flight slots
   queries could use. *)
let admit t ~queue_depth ~write =
  if write && (t.read_only || t.standby) then begin
    t.rejected_ro <- t.rejected_ro + 1;
    Reject_read_only
  end
  else if t.in_flight >= t.cfg.max_in_flight then begin
    t.shed <- t.shed + 1;
    Shed
  end
  else if write && queue_depth >= t.cfg.max_queue_depth then begin
    t.shed <- t.shed + 1;
    Shed
  end
  else begin
    t.in_flight <- t.in_flight + 1;
    Admit
  end

let release t =
  if t.in_flight <= 0 then invalid_arg "Admission.release: nothing in flight";
  t.in_flight <- t.in_flight - 1

let set_read_only t v = t.read_only <- v
let read_only t = t.read_only
let set_standby t v = t.standby <- v
let standby t = t.standby
let in_flight t = t.in_flight
let shed t = t.shed
let rejected_read_only t = t.rejected_ro
let config t = t.cfg
