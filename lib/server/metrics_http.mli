(** A minimal plain-text HTTP GET endpoint riding the server's event
    loop — the live observability plane's scrape surface.

    [GET /metrics] (or [/]) answers the Prometheus text exposition of
    the server's registry; [GET /observe] answers the same JSON document
    as the wire [Observe] request.  One request per connection
    (HTTP/1.0, [Connection: close]); no HTTP library, no extra thread —
    the listener and each accepted client share the serving loop's
    [select] through {!Server.add_watch}. *)

type t

type page = string -> string option
(** Router: request path → response body ([None] = 404).  A JSON body
    (starting with ['{'] or ['[']) is served as [application/json],
    anything else as Prometheus text. *)

val attach : ?host:string -> ?pages:page -> Server.t -> port:int -> t
(** Bind [host:port] (default 127.0.0.1; [port:0] picks a free one — see
    {!port}) and register with the server loop.  The default [pages]
    serves [/metrics], [/], and [/observe] as described above. *)

val port : t -> int
(** The bound port. *)

val close : t -> unit
(** Unregister and close the listener (accepted in-flight clients finish
    their one response). *)
