(* A plain-text HTTP/1.0 GET responder riding the server's event loop:
   enough for a Prometheus scrape or a curl, with no HTTP library and no
   extra thread.  The listener and every accepted client fd go into the
   loop's watch set; a client gets one request, one response, close. *)

type page = string -> string option

type t = {
  srv : Server.t;
  listen : Unix.file_descr;
  port : int;
  pages : page;
}

let http_response ~status ~content_type body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let respond fd body =
  (* The response is small (a metrics dump); a blocking write with the
     socket's default buffer is fine, and EPIPE just means the scraper
     gave up. *)
  (try Unix.clear_nonblock fd with Unix.Unix_error _ -> ());
  (try
     let b = Bytes.of_string body in
     let n = Bytes.length b in
     let written = ref 0 in
     while !written < n do
       match Unix.write fd b !written (n - !written) with
       | 0 -> written := n
       | k -> written := !written + k
     done
   with Unix.Unix_error _ -> ())

let request_path buf len =
  (* "GET <path> HTTP/1.x" — the first line is all we route on. *)
  let line =
    match Bytes.index_opt buf '\r' with
    | Some i when i < len -> Bytes.sub_string buf 0 i
    | _ -> Bytes.sub_string buf 0 len
  in
  match String.split_on_char ' ' line with
  | "GET" :: path :: _ -> Some path
  | _ -> None

let handle_client t fd () =
  Server.remove_watch t.srv fd;
  let buf = Bytes.create 4096 in
  let len = try Unix.read fd buf 0 4096 with Unix.Unix_error _ -> 0 in
  (if len > 0 then
     match request_path buf len with
     | None -> respond fd (http_response ~status:"400 Bad Request" ~content_type:"text/plain" "bad request\n")
     | Some path -> (
         match t.pages path with
         | Some body ->
             let content_type =
               if String.length body > 0 && (body.[0] = '{' || body.[0] = '[') then
                 "application/json"
               else "text/plain; version=0.0.4"
             in
             respond fd (http_response ~status:"200 OK" ~content_type body)
         | None ->
             respond fd
               (http_response ~status:"404 Not Found" ~content_type:"text/plain"
                  "not found\n")));
  try Unix.close fd with Unix.Unix_error _ -> ()

let rec accept_clients t () =
  match Unix.accept ~cloexec:true t.listen with
  | fd, _ ->
      Unix.set_nonblock fd;
      (* Wait for the request bytes in the loop rather than blocking the
         accept path on a slow client. *)
      Server.add_watch t.srv fd (fun () -> handle_client t fd ());
      accept_clients t ()
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept_clients t ()
  | exception Unix.Unix_error _ -> ()

let default_pages srv path =
  match path with
  | "/" | "/metrics" -> Some (Telemetry.Metrics.to_prometheus (Server.metrics srv))
  | "/observe" -> Some (Server.observe_json srv)
  | _ -> None

let attach ?host ?pages srv ~port =
  let listen, port = Server.listen_tcp ?host ~port () in
  let pages = match pages with Some p -> p | None -> default_pages srv in
  let t = { srv; listen; port; pages } in
  Server.add_watch srv listen (accept_clients t);
  t

let port t = t.port
let close t =
  Server.remove_watch t.srv t.listen;
  try Unix.close t.listen with Unix.Unix_error _ -> ()
