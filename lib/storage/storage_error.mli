(** Typed storage errors: the error channel of the I/O stack.

    Every syscall the {!Vfs} layer issues can fail — [ENOSPC] on a full
    disk, [EIO] on failing media, [EINTR] under signal load, or a short
    read/write.  Instead of leaking raw [Unix.Unix_error] exceptions out
    of the middle of an insert or checkpoint, the storage stack converts
    each failure into a {!t} carrying the operation, the path, an errno
    class, and a transient/permanent classification:

    - {e transient} errors ([EINTR], short transfers, [EIO]) are worth
      retrying — {!Retry.run} and {!Vfs.with_retry} do so with bounded
      exponential backoff;
    - {e permanent} errors ([ENOSPC], unknown errnos, a poisoned log, a
      read-only engine) are surfaced immediately; the {!Durable} engine
      reacts by degrading to read-only service instead of dying.

    Inside the stack the error travels as the {!Io} exception (so the
    deep page/tree code stays exception-based); the public entry points
    of [Wal], [Durable], and [Rta] catch it and return
    [(_, Storage_error.t) result]. *)

(** The syscall (or logical operation) that failed. *)
type op =
  | Open
  | Pread
  | Pwrite
  | Append
  | Fsync
  | Truncate
  | Close
  | Rename
  | Remove
  | Readdir
  | Fsync_dir

val pp_op : Format.formatter -> op -> unit

(** The failure class.  [Short_read]/[Short_write] model a transfer that
    moved fewer bytes than requested at the syscall level (the OS VFS
    loops these away; the injector surfaces them to test the loop).
    [Read_only_store] and [Wal_poisoned] are engine-level rejections that
    reuse the same channel so callers handle one error type. *)
type errno =
  | Enospc  (** No space left on device — permanent until space is freed. *)
  | Eio  (** Device-level I/O error — transient, retried with backoff. *)
  | Eintr  (** Interrupted syscall — transient, always safe to retry. *)
  | Short_read of { expected : int; got : int }
  | Short_write of { expected : int; got : int }
  | Read_only_store
      (** The {!Durable} engine is in its [Read_only] health state:
          updates are rejected, queries keep serving. *)
  | Wal_poisoned
      (** A failed append could not be rolled back; the log refuses
          further appends until recovery rewrites it. *)
  | Errno of string  (** Any other [Unix.error], by name. *)

val pp_errno : Format.formatter -> errno -> unit

type t = {
  op : op;
  path : string;
  errno : errno;
  transient : bool;
      (** Whether a retry may succeed.  Defaults from the errno class
          (see {!transient_of_errno}) but can be overridden — e.g. a
          short read caused by a truncated file is permanent. *)
  detail : string option;
}

exception Io of t
(** How a {!t} travels through the exception-based interior of the
    storage stack.  Raised by {!Vfs.os} on any Unix failure (except
    "no such file", which stays a [Sys_error] for compatibility) and by
    the {!Vfs.Inject} fault injector. *)

val v : ?detail:string -> ?transient:bool -> op:op -> path:string -> errno -> t
(** Build an error; [transient] defaults to {!transient_of_errno}. *)

val transient_of_errno : errno -> bool
(** [Eintr], [Eio], and short transfers are transient; everything else
    is permanent. *)

val of_unix : op:op -> path:string -> Unix.error -> t
(** Classify a raw Unix errno ([ENOSPC]/[EIO]/[EINTR] map to their typed
    classes, the rest to [Errno]). *)

val raise_io : ?detail:string -> ?transient:bool -> op:op -> path:string -> errno -> 'a

val protect : (unit -> 'a) -> ('a, t) result
(** Run a thunk, catching {!Io} into [Error].  The boundary adapter the
    result-typed entry points are built from.  Other exceptions (caller
    bugs, [Vfs.Crashed]) pass through untouched. *)

val ok_exn : ('a, t) result -> 'a
(** Unwrap, re-raising {!Io} on [Error] — for call sites that still want
    exceptional control flow (tests, examples). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit
