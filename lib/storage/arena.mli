(** Memory-mapped page arena.

    A growable file of fixed-size blocks exposed as one flat
    [Bigarray.Array1] (see {!Zcodec.buf}), so page reads and writes are
    loads and stores into the mapping — no [read]/[write] syscalls, no
    intermediate [bytes].  {!Page_store.Mmap} frames CRC-checked pages on
    top; this module only manages the mapping itself:

    - {b grow-by-remap}: the file is extended ([ftruncate]) in
      doubling steps and remapped; callers must re-fetch {!buffer} after
      any {!ensure} (the old mapping stays valid until collected, but no
      longer covers the tail);
    - {b durability}: writes into the mapping are volatile until {!sync},
      which [msync]s the dirty block ranges and then [fsync]s the
      descriptor (belt and braces: [msync] covers the data, [fsync] the
      size metadata from growth);
    - {b dirty tracking}: callers mark blocks they touched; {!sync}
      coalesces adjacent dirty blocks into ranges.

    Two backings share the interface.  [`Map] is the real thing
    ([Unix.map_file]).  [`Buffered] keeps the "mapping" in RAM and makes
    it durable through a {!Vfs.file} — one [pwrite] per dirty block plus
    an [fsync] at each {!sync} — which is what lets the crash-state explorer
    journal an arena-backed store exactly like any other disk artifact,
    and serves as the graceful fallback where [map_file] is unavailable
    (tmpfs oddities, exotic filesystems, [RTA_FORCE_NO_MMAP=1]). *)

exception Unavailable of string
(** [`Map] was demanded but the platform refused the mapping. *)

type backing = [ `Map | `Buffered ]

type t

val create :
  ?initial_blocks:int ->
  ?vfs:Vfs.t ->
  backing:[ `Auto | `Map | `Buffered ] ->
  block_size:int ->
  path:string ->
  mode:[ `Create | `Reopen ] ->
  unit ->
  t
(** [`Auto] tries [`Map] and falls back to [`Buffered] (over [vfs]) if
    mapping fails; [`Map] raises {!Unavailable} instead of falling back.
    [`Buffered] and the fallback do all I/O through [vfs] (default
    {!Vfs.os}); [`Map] uses the OS directly and ignores [vfs].
    Callers on a synthetic [vfs] (e.g. {!Vfs.Memory}) must pass
    [`Buffered] — [`Auto] would touch the real filesystem. *)

val backing : t -> backing
(** The resolved backing ([`Auto] collapses to one of the two). *)

val block_size : t -> int

val capacity_blocks : t -> int
(** Blocks the current mapping covers (file capacity, not usage). *)

val buffer : t -> Zcodec.buf
(** The live mapping.  Invalidated (for the growth tail) by {!ensure};
    re-fetch after growing.  Offsets are [block * block_size]. *)

val ensure : t -> blocks:int -> unit
(** Grow (ftruncate + remap) until {!capacity_blocks} [>= blocks].
    Doubling policy, so amortized remaps are logarithmic. *)

val mark_dirty : t -> block:int -> unit

val dirty_blocks : t -> int

val sync : t -> unit
(** Flush every dirty block to the platter and clear the dirty set.
    Raises a typed {!Storage_error.Io} on refusal. *)

val willneed : t -> block:int -> count:int -> unit
(** Advisory readahead for [count] blocks starting at [block]. *)

val remaps : t -> int
(** Times the mapping was re-established by growth (0 for [`Buffered]). *)

val msync_ranges : t -> int
(** Total coalesced ranges flushed across all {!sync} calls. *)

val file_size_bytes : t -> int
(** Physical capacity of the backing file in bytes. *)

val close : t -> unit
