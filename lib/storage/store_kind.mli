(** Which page backend a durable tree materializes its working set on.

    [Memory] is the seed configuration: pages live in a growable in-RAM
    array ({!Page_store.Mem}), the working set is rebuilt from
    snapshot + WAL at open.  [File] frames CRC-checked pages into a
    regular file through {!Vfs} pread/pwrite ({!Page_store.File}).
    [Mmap] maps the page file and reads/writes records in place through
    {!Zcodec} ({!Page_store.Mmap} over an {!Arena}).

    Selection is operational, not semantic: all three backends answer
    queries identically and produce byte-identical checkpoint snapshots
    (property-tested); they differ in RAM footprint, open latency, and
    how page touches turn into physical I/O. *)

type t = Memory | File | Mmap

val to_string : t -> string
(** ["memory"], ["file"], ["mmap"]. *)

val of_string : string -> t option

val all : t list
(** In declaration order: [Memory; File; Mmap]. *)

val pp : Format.formatter -> t -> unit
