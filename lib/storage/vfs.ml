exception Crashed

type file = {
  f_pread : int -> bytes -> int -> int -> int;
  f_pwrite : int -> bytes -> int -> int -> unit;
  f_append : bytes -> int -> int -> unit;
  f_size : unit -> int;
  f_sync : unit -> unit;
  f_truncate : int -> unit;
  f_close : unit -> unit;
}

type open_mode = [ `Create | `Reopen | `Log ]

type t = {
  v_open : open_mode -> string -> file;
  v_rename : string -> string -> unit;
  v_remove : string -> unit;
  v_exists : string -> bool;
  v_readdir : string -> string array;
  v_sync_dir : string -> unit;
}

(* --- The real filesystem ------------------------------------------------------ *)

(* Retry [EINTR] in place — an interrupted syscall never escapes the OS
   layer — and convert every other Unix failure into a typed
   [Storage_error.Io].  "No such file" stays a [Sys_error] where callers
   probe for absence (open/rename/remove): a missing file is a visible
   condition several recovery paths branch on, not an I/O fault. *)
let rec eintr f = try f () with Unix.Unix_error (Unix.EINTR, _, _) -> eintr f

let unix_guard ?(enoent_sys_error = false) ~op ~path f =
  try eintr f with
  | Unix.Unix_error (Unix.ENOENT, _, _) when enoent_sys_error ->
      raise (Sys_error (path ^ ": No such file or directory"))
  | Unix.Unix_error (e, _, _) ->
      raise (Storage_error.Io (Storage_error.of_unix ~op ~path e))

let os_file_of_fd ?(append = false) ~path fd =
  let really_write_at ~op seek buf pos len =
    unix_guard ~op ~path seek;
    (* Loop until every byte is down: [Unix.write] may transfer a prefix
       (short write) without raising.  A zero-progress write would spin,
       so surface it as a permanent short write instead. *)
    let rec loop off =
      if off < len then begin
        let n =
          unix_guard ~op ~path (fun () -> Unix.write fd buf (pos + off) (len - off))
        in
        if n <= 0 then
          Storage_error.raise_io ~op ~path ~transient:false
            (Storage_error.Short_write { expected = len; got = off })
        else loop (off + n)
      end
    in
    loop 0
  in
  {
    f_pread =
      (fun off buf pos len ->
        unix_guard ~op:Storage_error.Pread ~path (fun () ->
            ignore (Unix.lseek fd off Unix.SEEK_SET));
        let rec loop got =
          if got >= len then got
          else
            let n =
              unix_guard ~op:Storage_error.Pread ~path (fun () ->
                  Unix.read fd buf (pos + got) (len - got))
            in
            if n = 0 then got else loop (got + n)
        in
        loop 0);
    f_pwrite =
      (fun off buf pos len ->
        really_write_at ~op:Storage_error.Pwrite
          (fun () -> ignore (Unix.lseek fd off Unix.SEEK_SET))
          buf pos len);
    f_append =
      (fun buf pos len ->
        (* With O_APPEND the kernel positions atomically; otherwise seek
           to the end explicitly. *)
        really_write_at ~op:Storage_error.Append
          (fun () -> if not append then ignore (Unix.lseek fd 0 Unix.SEEK_END))
          buf pos len);
    f_size =
      (fun () ->
        unix_guard ~op:Storage_error.Pread ~path (fun () ->
            (Unix.fstat fd).Unix.st_size));
    f_sync =
      (fun () -> unix_guard ~op:Storage_error.Fsync ~path (fun () -> Unix.fsync fd));
    f_truncate =
      (fun len ->
        unix_guard ~op:Storage_error.Truncate ~path (fun () -> Unix.ftruncate fd len));
    f_close =
      (fun () ->
        (* No EINTR retry on close: the fd may already be gone, and a
           second close could hit a recycled descriptor. *)
        try Unix.close fd
        with Unix.Unix_error (e, _, _) ->
          raise (Storage_error.Io (Storage_error.of_unix ~op:Storage_error.Close ~path e)));
  }

let os =
  {
    v_open =
      (fun mode path ->
        let openfile flags =
          unix_guard ~enoent_sys_error:true ~op:Storage_error.Open ~path (fun () ->
              Unix.openfile path flags 0o644)
        in
        match mode with
        | `Create ->
            let fd = openfile [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] in
            os_file_of_fd ~path fd
        | `Reopen ->
            let fd = openfile [ Unix.O_RDWR ] in
            os_file_of_fd ~path fd
        | `Log ->
            (* O_APPEND makes every append land atomically at end-of-file;
               the advisory lock rejects a second process opening the same
               log outright (locks are per-process, so re-opening after an
               in-process simulated crash still works). *)
            let fd = openfile [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_APPEND ] in
            (try Unix.lockf fd Unix.F_TLOCK 0
             with Unix.Unix_error _ ->
               Unix.close fd;
               failwith (Printf.sprintf "Vfs: %s is locked by another process" path));
            os_file_of_fd ~append:true ~path fd);
    v_rename =
      (fun src dst ->
        unix_guard ~enoent_sys_error:true ~op:Storage_error.Rename ~path:src
          (fun () -> Unix.rename src dst));
    v_remove =
      (fun path ->
        unix_guard ~enoent_sys_error:true ~op:Storage_error.Remove ~path (fun () ->
            Unix.unlink path));
    v_exists = Sys.file_exists;
    v_readdir = Sys.readdir;
    v_sync_dir =
      (fun dir ->
        unix_guard ~op:Storage_error.Fsync_dir ~path:dir (fun () ->
            let fd = Unix.openfile dir [ Unix.O_RDONLY ] 0 in
            Fun.protect ~finally:(fun () -> Unix.close fd) (fun () -> Unix.fsync fd)));
  }

(* --- Shared helpers ----------------------------------------------------------- *)

let read_file vfs path =
  let f = vfs.v_open `Reopen path in
  Fun.protect ~finally:(fun () -> f.f_close ()) @@ fun () ->
  let size = f.f_size () in
  let buf = Bytes.create size in
  let got = f.f_pread 0 buf 0 size in
  if got < size then failwith (Printf.sprintf "Vfs.read_file: short read on %s" path);
  buf

let write_file_atomic vfs ~path buf ~len =
  let tmp = path ^ ".tmp" in
  let f = vfs.v_open `Create tmp in
  Fun.protect
    ~finally:(fun () -> f.f_close ())
    (fun () ->
      f.f_pwrite 0 buf 0 len;
      f.f_sync ());
  vfs.v_rename tmp path

let sync_path vfs path =
  let f = vfs.v_open `Reopen path in
  Fun.protect ~finally:(fun () -> f.f_close ()) (fun () -> f.f_sync ())

(* --- Fault injection ---------------------------------------------------------- *)

module Fault = struct
  type mode = Torn | Dropped | Duplicated

  type handle = {
    mutable budget : int;
    mutable is_crashed : bool;
    mutable n_written : int;
    mode : mode;
  }

  let wrap ?(mode = Torn) ~fail_after inner =
    if fail_after < 0 then invalid_arg "Vfs.Fault.wrap: negative budget";
    let h = { budget = fail_after; is_crashed = false; n_written = 0; mode } in
    let check () = if h.is_crashed then raise Crashed in
    let guarded_write ~emit len =
      check ();
      if len < h.budget then begin
        emit ~len;
        h.budget <- h.budget - len;
        h.n_written <- h.n_written + len
      end
      else begin
        (* The crash point lies inside (or exactly at the end of) this
           write: mangle it according to the disk model under test, then
           die.  Torn emits the surviving prefix; Dropped loses the whole
           write; Duplicated lands it twice (a retried write whose first
           copy also reached the platter). *)
        (match h.mode with
        | Torn ->
            emit ~len:h.budget;
            h.n_written <- h.n_written + h.budget
        | Dropped -> ()
        | Duplicated ->
            emit ~len;
            emit ~len;
            h.n_written <- h.n_written + (2 * len));
        h.budget <- 0;
        h.is_crashed <- true;
        raise Crashed
      end
    in
    let file =
      {
        f_append =
          (fun buf pos len ->
            guarded_write ~emit:(fun ~len -> inner.f_append buf pos len) len);
        f_pwrite =
          (fun off buf pos len ->
            guarded_write ~emit:(fun ~len -> inner.f_pwrite off buf pos len) len);
        f_pread =
          (fun off buf pos len ->
            check ();
            inner.f_pread off buf pos len);
        f_size =
          (fun () ->
            check ();
            inner.f_size ());
        f_sync =
          (fun () ->
            check ();
            inner.f_sync ());
        f_truncate =
          (fun len ->
            check ();
            inner.f_truncate len);
        f_close =
          (fun () ->
            check ();
            inner.f_close ());
      }
    in
    (h, file)

  let crashed h = h.is_crashed
  let written h = h.n_written
end

(* --- In-memory journaling filesystem ------------------------------------------ *)

module Memory = struct
  type op =
    | Create of string
    | Pwrite of { path : string; off : int; data : string }
    | Truncate of string * int
    | Sync of string
    | Rename of string * string
    | Remove of string
    | Sync_dir of string

  let pp_op ppf = function
    | Create p -> Format.fprintf ppf "create %s" p
    | Pwrite { path; off; data } ->
        Format.fprintf ppf "pwrite %s @%d +%d" path off (String.length data)
    | Truncate (p, n) -> Format.fprintf ppf "truncate %s to %d" p n
    | Sync p -> Format.fprintf ppf "fsync %s" p
    | Rename (a, b) -> Format.fprintf ppf "rename %s -> %s" a b
    | Remove p -> Format.fprintf ppf "remove %s" p
    | Sync_dir d -> Format.fprintf ppf "fsync-dir %s" d

  type fs = {
    files : (string, Buffer.t) Hashtbl.t;
    mutable journal : op list; (* reversed *)
    mutable n_ops : int;
  }

  let create () = { files = Hashtbl.create 32; journal = []; n_ops = 0 }

  (* Paths are flat names; "./x" and "x" must alias (callers go through
     [Filename.dirname]/[concat], which introduces "./"). *)
  let norm path =
    if String.length path > 2 && String.sub path 0 2 = "./" then
      String.sub path 2 (String.length path - 2)
    else path

  let log fs op =
    fs.journal <- op :: fs.journal;
    fs.n_ops <- fs.n_ops + 1

  let ops fs = List.rev fs.journal
  let op_count fs = fs.n_ops

  let contents fs =
    Hashtbl.fold (fun path buf acc -> (path, Buffer.contents buf) :: acc) fs.files []
    |> List.sort compare

  let buffer_blit_sub src ~pos ~len = Bytes.sub src pos len |> Bytes.to_string

  let pwrite_buffer buf ~off ~data =
    let cur = Buffer.contents buf in
    let cur_len = String.length cur in
    let data_len = String.length data in
    let new_len = max cur_len (off + data_len) in
    let out = Bytes.make new_len '\000' in
    Bytes.blit_string cur 0 out 0 cur_len;
    Bytes.blit_string data 0 out off data_len;
    Buffer.clear buf;
    Buffer.add_bytes buf out

  let file_of fs path =
    let path = norm path in
    let find () =
      match Hashtbl.find_opt fs.files path with
      | Some b -> b
      | None -> raise (Sys_error (path ^ ": No such file or directory"))
    in
    {
      f_pread =
        (fun off buf pos len ->
          let b = find () in
          let size = Buffer.length b in
          if off >= size then 0
          else begin
            let n = min len (size - off) in
            Bytes.blit_string (Buffer.contents b) off buf pos n;
            n
          end);
      f_pwrite =
        (fun off buf pos len ->
          let b = find () in
          let data = buffer_blit_sub buf ~pos ~len in
          pwrite_buffer b ~off ~data;
          log fs (Pwrite { path; off; data }));
      f_append =
        (fun buf pos len ->
          let b = find () in
          let off = Buffer.length b in
          let data = buffer_blit_sub buf ~pos ~len in
          Buffer.add_string b data;
          log fs (Pwrite { path; off; data }));
      f_size = (fun () -> Buffer.length (find ()));
      f_sync = (fun () -> log fs (Sync path));
      f_truncate =
        (fun len ->
          let b = find () in
          let cur = Buffer.contents b in
          let cur_len = String.length cur in
          Buffer.clear b;
          if len <= cur_len then Buffer.add_string b (String.sub cur 0 len)
          else begin
            Buffer.add_string b cur;
            Buffer.add_string b (String.make (len - cur_len) '\000')
          end;
          log fs (Truncate (path, len)));
      f_close = (fun () -> ());
    }

  let dir_member dir name =
    (* Flat namespace: everything lives in "." unless the caller used an
       explicit directory prefix. *)
    let dir = norm dir in
    if dir = "." || dir = "" then not (String.contains name '/')
    else
      String.length name > String.length dir
      && String.sub name 0 (String.length dir) = dir
      && name.[String.length dir] = '/'

  let strip_dir dir name =
    let dir = norm dir in
    if dir = "." || dir = "" then name
    else String.sub name (String.length dir + 1) (String.length name - String.length dir - 1)

  let vfs fs =
    {
      v_open =
        (fun mode path ->
          let path = norm path in
          (match mode with
          | `Create ->
              Hashtbl.replace fs.files path (Buffer.create 256);
              log fs (Create path)
          | `Log ->
              if not (Hashtbl.mem fs.files path) then begin
                Hashtbl.replace fs.files path (Buffer.create 256);
                log fs (Create path)
              end
          | `Reopen ->
              if not (Hashtbl.mem fs.files path) then
                failwith (Printf.sprintf "Vfs.Memory: no such file %s" path));
          file_of fs path);
      v_rename =
        (fun src dst ->
          let src = norm src and dst = norm dst in
          match Hashtbl.find_opt fs.files src with
          | None -> raise (Sys_error (src ^ ": No such file or directory"))
          | Some b ->
              Hashtbl.remove fs.files src;
              Hashtbl.replace fs.files dst b;
              log fs (Rename (src, dst)));
      v_remove =
        (fun path ->
          let path = norm path in
          if not (Hashtbl.mem fs.files path) then
            raise (Sys_error (path ^ ": No such file or directory"));
          Hashtbl.remove fs.files path;
          log fs (Remove path));
      v_exists = (fun path -> Hashtbl.mem fs.files (norm path));
      v_readdir =
        (fun dir ->
          Hashtbl.fold
            (fun name _ acc -> if dir_member dir name then strip_dir dir name :: acc else acc)
            fs.files []
          |> Array.of_list);
      v_sync_dir = (fun dir -> log fs (Sync_dir (norm dir)));
    }
end

(* --- Errno-class fault injection ---------------------------------------------- *)

module Inject = struct
  type err_class = Enospc | Eio | Eintr | Short

  let class_name = function
    | Enospc -> "enospc"
    | Eio -> "eio"
    | Eintr -> "eintr"
    | Short -> "short"

  let pp_class fmt c = Format.pp_print_string fmt (class_name c)

  let class_of_string = function
    | "enospc" -> Some Enospc
    | "eio" -> Some Eio
    | "eintr" -> Some Eintr
    | "short" -> Some Short
    | _ -> None

  let all_classes = [ Enospc; Eio; Eintr; Short ]

  type handle = {
    mutable fail_at : int;
    mutable n_syscalls : int;
    mutable n_injected : int;
    mutable fired : bool;
    cls : err_class;
    persistent : bool;
    stats : Io_stats.t option;
  }

  let syscalls h = h.n_syscalls
  let injected h = h.n_injected
  let triggered h = h.n_injected > 0

  let arm h ~fail_at =
    h.fail_at <- fail_at;
    h.fired <- false

  (* Which counted syscalls a class can fail on.  EIO and EINTR can hit
     anything; a short transfer needs a transfer; ENOSPC needs an
     allocation — a data write, a file creation, or the rename's new
     directory entry. *)
  let applicable cls (op : Storage_error.op) ~alloc =
    match cls with
    | Eio | Eintr -> true
    | Short -> ( match op with Pread | Pwrite | Append -> true | _ -> false)
    | Enospc -> (
        match op with Pwrite | Append | Rename -> true | Open -> alloc | _ -> false)

  let errno_of cls (op : Storage_error.op) ~len : Storage_error.errno =
    match cls with
    | Enospc -> Storage_error.Enospc
    | Eio -> Storage_error.Eio
    | Eintr -> Storage_error.Eintr
    | Short -> (
        match op with
        | Pread -> Storage_error.Short_read { expected = len; got = 0 }
        | _ -> Storage_error.Short_write { expected = len; got = 0 })

  let wrap ?stats ~persistent ~fail_at ~cls vfs =
    if fail_at < 1 then invalid_arg "Vfs.Inject.wrap: fail_at must be >= 1";
    let h =
      { fail_at; n_syscalls = 0; n_injected = 0; fired = false; cls; persistent; stats }
    in
    (* Every counted syscall ticks [n_syscalls] — uniformly across
       classes, so fault point k names the same syscall whatever class
       is injected.  The fault fires on the first class-applicable
       syscall at index >= fail_at (on every one from there on when
       [persistent]).  A firing syscall performs NO side effect: the
       failure happens "before" the kernel touched anything, so a retry
       that re-issues the operation is exact. *)
    let hook ~op ~path ?(alloc = true) ?(len = 0) inner =
      h.n_syscalls <- h.n_syscalls + 1;
      let fire =
        h.n_syscalls >= h.fail_at
        && applicable h.cls op ~alloc
        && (h.persistent || not h.fired)
      in
      if fire then begin
        h.fired <- true;
        h.n_injected <- h.n_injected + 1;
        (match h.stats with Some s -> Io_stats.record_error_injected s | None -> ());
        raise
          (Storage_error.Io
             (Storage_error.v ~detail:"injected" ~op ~path (errno_of h.cls op ~len)))
      end
      else inner ()
    in
    let wrap_file path f =
      {
        f_pread =
          (fun off buf pos len ->
            hook ~op:Storage_error.Pread ~path ~len (fun () -> f.f_pread off buf pos len));
        f_pwrite =
          (fun off buf pos len ->
            hook ~op:Storage_error.Pwrite ~path ~len (fun () ->
                f.f_pwrite off buf pos len));
        f_append =
          (fun buf pos len ->
            hook ~op:Storage_error.Append ~path ~len (fun () -> f.f_append buf pos len));
        f_size = f.f_size;
        f_sync = (fun () -> hook ~op:Storage_error.Fsync ~path (fun () -> f.f_sync ()));
        f_truncate =
          (fun len -> hook ~op:Storage_error.Truncate ~path (fun () -> f.f_truncate len));
        f_close = f.f_close;
      }
    in
    let vfs' =
      {
        v_open =
          (fun mode path ->
            let alloc = mode <> `Reopen in
            let f = hook ~op:Storage_error.Open ~path ~alloc (fun () -> vfs.v_open mode path) in
            wrap_file path f);
        v_rename =
          (fun src dst ->
            hook ~op:Storage_error.Rename ~path:src (fun () -> vfs.v_rename src dst));
        v_remove =
          (fun path -> hook ~op:Storage_error.Remove ~path (fun () -> vfs.v_remove path));
        v_exists = vfs.v_exists;
        v_readdir = vfs.v_readdir;
        v_sync_dir =
          (fun dir -> hook ~op:Storage_error.Fsync_dir ~path:dir (fun () -> vfs.v_sync_dir dir));
      }
    in
    (h, vfs')
end

(* --- Transparent retry --------------------------------------------------------- *)

let with_retry ?stats ?(policy = Retry.default) vfs =
  let r f = Retry.run ?stats ~policy f in
  let wrap_file f =
    {
      f_pread = (fun off buf pos len -> r (fun () -> f.f_pread off buf pos len));
      f_pwrite = (fun off buf pos len -> r (fun () -> f.f_pwrite off buf pos len));
      f_append = (fun buf pos len -> r (fun () -> f.f_append buf pos len));
      f_size = (fun () -> r (fun () -> f.f_size ()));
      f_sync = (fun () -> r (fun () -> f.f_sync ()));
      f_truncate = (fun len -> r (fun () -> f.f_truncate len));
      (* Close is not retried: a failed close leaves the descriptor state
         unspecified, and retrying could close a recycled fd. *)
      f_close = f.f_close;
    }
  in
  {
    v_open = (fun mode path -> wrap_file (r (fun () -> vfs.v_open mode path)));
    v_rename = (fun src dst -> r (fun () -> vfs.v_rename src dst));
    v_remove = (fun path -> r (fun () -> vfs.v_remove path));
    v_exists = vfs.v_exists;
    v_readdir = vfs.v_readdir;
    v_sync_dir = (fun dir -> r (fun () -> vfs.v_sync_dir dir));
  }

(* --- Tracing --------------------------------------------------------------- *)

let with_telemetry tracer vfs =
  if not (Telemetry.Tracer.enabled tracer) then vfs
  else begin
    let span name ?(len = -1) path f =
      Telemetry.Tracer.with_span tracer ~level:`Debug name f ~attrs:(fun () ->
          let base = [ ("path", Telemetry.Tracer.Str path) ] in
          if len < 0 then base else ("len", Telemetry.Tracer.Int len) :: base)
    in
    let wrap_file path f =
      {
        f_pread =
          (fun off buf pos len ->
            span "vfs.pread" ~len path (fun () -> f.f_pread off buf pos len));
        f_pwrite =
          (fun off buf pos len ->
            span "vfs.pwrite" ~len path (fun () -> f.f_pwrite off buf pos len));
        f_append =
          (fun buf pos len ->
            span "vfs.append" ~len path (fun () -> f.f_append buf pos len));
        f_size = f.f_size;
        f_sync = (fun () -> span "vfs.fsync" path (fun () -> f.f_sync ()));
        f_truncate = (fun len -> span "vfs.truncate" path (fun () -> f.f_truncate len));
        f_close = f.f_close;
      }
    in
    {
      v_open =
        (fun mode path -> wrap_file path (span "vfs.open" path (fun () -> vfs.v_open mode path)));
      v_rename = (fun src dst -> span "vfs.rename" src (fun () -> vfs.v_rename src dst));
      v_remove = (fun path -> span "vfs.remove" path (fun () -> vfs.v_remove path));
      v_exists = vfs.v_exists;
      v_readdir = vfs.v_readdir;
      v_sync_dir = (fun dir -> span "vfs.sync_dir" dir (fun () -> vfs.v_sync_dir dir));
    }
  end
