type t = Memory | File | Mmap

let to_string = function Memory -> "memory" | File -> "file" | Mmap -> "mmap"

let of_string = function
  | "memory" | "mem" -> Some Memory
  | "file" -> Some File
  | "mmap" -> Some Mmap
  | _ -> None

let all = [ Memory; File; Mmap ]
let pp ppf t = Format.pp_print_string ppf (to_string t)
