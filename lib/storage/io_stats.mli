(** Physical I/O counters.

    The paper's evaluation estimates running time as
    [#I/O x average disk access time + measured CPU time] (section 5).
    Every page store and buffer pool in this code base charges its physical
    page operations to an [Io_stats.t], so experiments can report the same
    quantity without real disks. *)

type t

val create : unit -> t

val reads : t -> int
(** Physical page reads (buffer-pool misses, or direct store reads). *)

val writes : t -> int
(** Physical page writes (dirty evictions, flushes, direct writes). *)

val allocs : t -> int
(** Pages allocated over the lifetime of the store. *)

val frees : t -> int
(** Pages returned to the store (page-disposal optimisation). *)

val syncs : t -> int
(** [fsync]s issued against the underlying file (durable stores only). *)

val crc_failures : t -> int
(** Page reads whose CRC32 did not match — detected bit-rot. *)

val scrubbed : t -> int
(** Pages whose checksum a scrub pass verified. *)

val repaired : t -> int
(** Quarantined pages a scrub pass rewrote from a reference state. *)

val errors_injected : t -> int
(** Faults fired by {!Vfs.Inject} — nonzero only under error injection. *)

val retries : t -> int
(** Transient I/O errors absorbed by a retry loop ({!Retry.run} /
    {!Vfs.with_retry}) instead of surfacing to the caller. *)

val read_only_transitions : t -> int
(** Times a [Durable] engine entered its [Read_only] health state after a
    persistent write failure. *)

val total_io : t -> int
(** [reads + writes]. *)

val record_read : t -> unit
val record_write : t -> unit
val record_alloc : t -> unit
val record_free : t -> unit
val record_sync : t -> unit
val record_crc_failure : t -> unit
val record_scrubbed : t -> unit
val record_repaired : t -> unit
val record_error_injected : t -> unit
val record_retry : t -> unit
val record_read_only_transition : t -> unit

val reset : t -> unit
(** Zero all counters. *)

type snapshot = {
  reads : int;
  writes : int;
  allocs : int;
  frees : int;
  syncs : int;
  crc_failures : int;
  scrubbed : int;
  repaired : int;
  errors_injected : int;
  retries : int;
  read_only_transitions : int;
}

val snapshot : t -> snapshot

val diff : snapshot -> snapshot -> snapshot
(** [diff later earlier] is the per-field difference — the I/O incurred
    between the two snapshots. *)

val pp : Format.formatter -> t -> unit
val pp_snapshot : Format.formatter -> snapshot -> unit
