(** Physical I/O counters — re-exported from {!Telemetry.Io_stats}.

    The implementation moved to [lib/telemetry] so tracing spans can
    carry I/O deltas without a dependency cycle; see that module for the
    documentation, including which counters count page I/Os versus
    bookkeeping events.  [Storage.Io_stats.t] remains the same type as
    [Telemetry.Io_stats.t]. *)

include module type of struct
  include Telemetry.Io_stats
end
