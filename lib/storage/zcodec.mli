(** Zero-copy record accessors over memory-mapped slices.

    {!Codec} reads and writes through [bytes] buffers, which forces every
    page access on a mapped store to round-trip through an intermediate
    copy.  This module provides the same little-endian wire format over a
    [Bigarray.Array1] of chars — the type [Unix.map_file] yields — so
    MVSBT node fields are decoded from and encoded into the mapped page
    {e in place}.

    Byte-for-byte compatibility with {!Codec} is load-bearing: a page
    written through a {!Writer} here must be readable by
    [Codec.Reader] (and vice versa), and {!crc32} must agree with
    [Codec.crc32] on equal contents.  [test_storage] pins both. *)

type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

val get_u8 : buf -> int -> int
val set_u8 : buf -> int -> int -> unit
val get_i32 : buf -> int -> int
(** Little-endian, sign-extended — as [Codec.Reader.i32]. *)

val set_i32 : buf -> int -> int -> unit
val get_i64 : buf -> int -> int
val set_i64 : buf -> int -> int -> unit

val crc32 : buf -> pos:int -> len:int -> int
(** Same polynomial and convention as [Codec.crc32]. *)

val blit_to_bytes : buf -> int -> bytes -> int -> int -> unit
val blit_of_bytes : bytes -> int -> buf -> int -> int -> unit

module Writer : sig
  (** Writes directly into a slice of the mapped region; [Overflow] on
      running past the slice, mirroring [Codec.Writer]. *)

  type t

  val create : buf -> off:int -> len:int -> t
  (** Writer over [len] bytes of [buf] starting at absolute offset [off].
      Positions reported by {!pos} are relative to [off]. *)

  val pos : t -> int
  val u8 : t -> int -> unit
  val i32 : t -> int -> unit
  val i64 : t -> int -> unit
  val bool : t -> bool -> unit
end

module Reader : sig
  (** Reads directly out of a slice of the mapped region. *)

  type t

  val create : buf -> off:int -> len:int -> t
  val pos : t -> int
  val u8 : t -> int
  val i32 : t -> int
  val i64 : t -> int
  val bool : t -> bool
end
