(** Page stores: the simulated disk.

    A page store owns a growing collection of fixed-size pages addressed by
    {!Page_id.t}.  Two implementations share one signature:

    - {!Mem} keeps payloads in memory — fast, used by tests and benchmarks;
      physical I/O is still charged to {!Io_stats} so experiments measure
      the same quantity the paper does.
    - {!File} serialises each page through a {!PAGE_CODEC} into a fixed-size
      block of a real file (through a {!Vfs.t}), proving the structures are
      genuinely disk-resident.  Every block carries a CRC32 over its
      payload, verified on every read, so bit-rot is detected loudly
      ({!Corrupt_page}) instead of being decoded into garbage.
    - {!Mmap} keeps {!File}'s block geometry but maps the file into an
      {!Arena} and codecs pages in place through {!Zcodec} — no
      [read]/[write] syscalls, no intermediate [bytes].  See
      {!Store_kind} for when to pick which.

    Stores are deliberately dumb: no caching.  Layer {!Buffer_pool} on top
    for buffering. *)

exception Corrupt_page of { path : string; page : Page_id.t }
(** A page block whose stored CRC32 does not match its payload (or whose
    length field is out of range).  Counted in {!Io_stats.crc_failures}. *)

module type S = sig
  type payload
  (** The in-memory representation of one page. *)

  type t

  val stats : t -> Io_stats.t
  (** The counter sink this store charges physical operations to. *)

  val alloc : t -> Page_id.t
  (** Allocate a fresh page id.  Charges an alloc, not an I/O; the first
      {!write} pays the I/O.  Ids are never reused, so stale references to
      freed pages stay detectably dangling instead of silently aliasing a
      new page. *)

  val read : t -> Page_id.t -> payload
  (** @raise Not_found if the page was never written or was freed. *)

  val write : t -> Page_id.t -> payload -> unit

  val free : t -> Page_id.t -> unit
  (** Return a page to the store (page-disposal optimisation).  The id is
      retired, never recycled. *)

  val mem : t -> Page_id.t -> bool
  val live_pages : t -> int
  (** Number of currently allocated, not-freed pages — the paper's space
      metric. *)

  val prefetch : t -> Page_id.t list -> unit
  (** Advisory: hint that these pages are about to be read (a buffer pool
      batches the root-to-leaf descent path through this).  No-op for
      stores with nothing to warm ({!Mem}, {!File}); {!Mmap} forwards the
      hint to the kernel via [posix_madvise].  Never charged as I/O. *)
end

module Mem (P : sig
  type t
end) : sig
  include S with type payload = P.t

  val create : ?stats:Io_stats.t -> unit -> t

  val reserve : t -> next:int -> unit
  (** Ensure future {!alloc}s return ids at or above [next].  Used when
      reloading a persisted structure whose pages carry their original
      ids. *)

  val install : t -> Page_id.t -> payload -> unit
  (** Install a page under an explicit id without charging I/O — snapshot
      loading only. *)

  val ids : t -> Page_id.t list
  (** Live page ids, ascending.  Charges nothing — enumeration for
      maintenance passes (vacuum), not a page transfer. *)
end

module type PAGE_CODEC = sig
  type t

  val encode : Codec.Writer.t -> t -> unit
  (** @raise Codec.Overflow if the payload exceeds the page size. *)

  val decode : Codec.Reader.t -> t
end

module File (C : PAGE_CODEC) : sig
  include S with type payload = C.t

  val block_overhead : int
  (** Bytes of each block spent on the integrity frame ([len] + [crc], 8);
      the codec sees at most [page_size - block_overhead] bytes. *)

  val create :
    ?stats:Io_stats.t ->
    ?page_size:int ->
    ?mode:[ `Create | `Reopen ] ->
    ?vfs:Vfs.t ->
    ?tracer:Telemetry.Tracer.t ->
    path:string ->
    unit ->
    t
  (** Every page occupies one fixed-size block of [page_size] bytes
      (default 4096, the paper's setting); block 0 holds a CRC32-framed
      header recording the geometry, and each page block is framed as
      [len][crc32][payload].

      With [`Create] (the default) the file is created or truncated.  With
      [`Reopen] an existing page file is opened in place: the header is
      validated against [page_size], [next_id] is rebuilt from the file
      length (a torn trailing page is ignored), and the written set is
      every complete block minus the freed ids persisted in the
      [path ^ ".free"] sidecar ({!sync}/{!close} rewrite it atomically).
      If the sidecar is stale or torn the reopen degrades conservatively:
      pages freed after the last sync resurrect and {!live_pages}
      overcounts; after a clean {!sync} or {!close} liveness is exact.

      All I/O goes through [vfs] (default {!Vfs.os}).  When [tracer]
      (default {!Telemetry.Tracer.noop}) is enabled, each {!read},
      {!write} and {!sync} emits a [page.read]/[page.write]/[page.sync]
      span carrying the page id.
      @raise Failure on a missing, foreign, or geometry-mismatched file
      under [`Reopen]. *)

  val page_size : t -> int

  val verify : t -> Page_id.t -> bool
  (** Check the stored CRC of a written page without decoding it.  [false]
      (a corrupt block) is also counted in {!Io_stats.crc_failures}.
      @raise Not_found if the page was never written or was freed. *)

  val read_block : t -> Page_id.t -> bytes
  (** The raw [page_size]-byte block of a page, frame included — scrub and
      explorer plumbing. *)

  val write_block : t -> Page_id.t -> bytes -> unit
  (** Overwrite a page's raw block verbatim (must be exactly [page_size]
      bytes).  Bypasses the codec {e and the CRC framing} — the caller is
      responsible for the frame's integrity.  Scrub/repair and
      fault-injection plumbing; not charged as a logical write. *)

  val written_ids : t -> Page_id.t list
  (** Every currently written (allocated, not freed) page id, ascending. *)

  val sync : t -> unit
  (** [fsync] the backing file — every completed {!write} is on the
      platter when this returns — then persist the freed-id sidecar.
      Charged to {!Io_stats.syncs}. *)

  val close : t -> unit
  (** Persist the freed-id sidecar (best-effort) and release the file. *)

  val file_size_bytes : t -> int
  (** Includes the header block: [(1 + next_id) * page_size]. *)

  val install : t -> Page_id.t -> payload -> unit
  (** Install a page under an explicit id, moving the alloc cursor past
      it — materialising a snapshot into a fresh page file.  Unlike
      {!Mem.install} the physical write is real and charged as a write;
      only the alloc is skipped (the id is fixed by its previous life). *)
end

module type ZPAGE_CODEC = sig
  type t

  val encode : Zcodec.Writer.t -> t -> unit
  (** @raise Codec.Overflow if the payload exceeds the page size. *)

  val decode : Zcodec.Reader.t -> t
end

module Mmap (C : ZPAGE_CODEC) : sig
  include S with type payload = C.t

  val block_overhead : int
  (** Same frame as {!File.block_overhead}: [len] + [crc], 8 bytes. *)

  val create :
    ?stats:Io_stats.t ->
    ?page_size:int ->
    ?mode:[ `Create | `Reopen ] ->
    ?vfs:Vfs.t ->
    ?tracer:Telemetry.Tracer.t ->
    ?backing:[ `Auto | `Map | `Buffered ] ->
    path:string ->
    unit ->
    t
  (** Block-for-block the layout of {!File} — header in block 0, page
      [id] in block [1 + id], each block CRC32-framed — but the file is
      memory-mapped (an {!Arena}) and pages are encoded/decoded in place
      through the {!ZPAGE_CODEC}.  Because the arena grows by doubling,
      the physical file length runs ahead of the used prefix; the header
      therefore carries the {e committed} page count, rewritten (and
      flushed separately, after the data ranges) on every {!sync}.

      [backing] selects the arena flavour (default [`Auto]: real
      [map_file], falling back to a RAM buffer flushed through [vfs]
      where mapping is unavailable — see {!Arena.create}).  Each logical
      read/write is charged to [stats] as a [read]/[write] {e plus} a
      [mapped_read]/[mapped_write], so cost-model totals stay comparable
      across backends while the zero-copy share stays visible.

      @raise Failure on a missing, foreign, or geometry-mismatched file
      under [`Reopen].
      @raise Arena.Unavailable under [backing:`Map] on platforms that
      refuse the mapping. *)

  val page_size : t -> int

  val backing : t -> Arena.backing
  (** Which arena flavour [`Auto] resolved to. *)

  val verify : t -> Page_id.t -> bool
  (** In-place CRC check of a written page's mapped block, without
      decoding.  [false] is also counted in {!Io_stats.crc_failures}.
      @raise Not_found if the page was never written or was freed. *)

  val read_block : t -> Page_id.t -> bytes
  (** Copy of the raw [page_size]-byte block, frame included — scrub and
      explorer plumbing (the one place the mmap store does copy). *)

  val write_block : t -> Page_id.t -> bytes -> unit
  (** Overwrite a page's raw block verbatim and mark it dirty.  Bypasses
      the codec {e and the CRC framing}; scrub/repair and fault-injection
      plumbing, not charged as a logical write. *)

  val written_ids : t -> Page_id.t list

  val sync : t -> unit
  (** Flush dirty data ranges ([msync] per coalesced range), then commit
      the header's page count, then persist the freed-id sidecar — in
      that order, so a crash between barriers leaves the previous
      committed prefix intact.  Charged to {!Io_stats.syncs}; the range
      count lands in {!Io_stats.msyncs}. *)

  val close : t -> unit

  val file_size_bytes : t -> int
  (** The used prefix, [(1 + next_id) * page_size] — comparable with
      {!File.file_size_bytes} as the space metric. *)

  val mapped_capacity_bytes : t -> int
  (** Physical capacity of the arena file (runs ahead of
      {!file_size_bytes} because growth doubles). *)

  val remaps : t -> int
  (** Times growth re-established the mapping. *)

  val install : t -> Page_id.t -> payload -> unit
  (** See {!File.install}. *)
end
