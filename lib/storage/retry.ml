type policy = {
  max_attempts : int;
  base_delay_s : float;
  multiplier : float;
  max_delay_s : float;
  sleep : float -> unit;
}

let default =
  {
    max_attempts = 4;
    base_delay_s = 0.001;
    multiplier = 4.0;
    max_delay_s = 0.1;
    sleep = Unix.sleepf;
  }

let no_delay = { default with base_delay_s = 0.0; sleep = ignore }

let pp_policy fmt p =
  Format.fprintf fmt "attempts=%d base=%gs multiplier=%g max=%gs" p.max_attempts
    p.base_delay_s p.multiplier p.max_delay_s

let run ?stats ~policy f =
  let record () =
    match stats with Some s -> Io_stats.record_retry s | None -> ()
  in
  let rec go attempt delay =
    try f ()
    with Storage_error.Io e
      when e.Storage_error.transient && attempt < policy.max_attempts ->
      record ();
      policy.sleep delay;
      go (attempt + 1) (Float.min policy.max_delay_s (delay *. policy.multiplier))
  in
  go 1 policy.base_delay_s
