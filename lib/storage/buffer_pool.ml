module Make (Store : Page_store.S) = struct
  type entry = { payload : Store.payload; mutable dirty : bool }

  (* [intents] is the durable pin ledger: Evict only knows about resident
     entries, so a pin must survive the page being dropped ([drop_cache])
     and re-establish itself when the page faults back in.  Evict's own
     pin state is derived: pinned there iff resident with intent > 0. *)
  type t = {
    store : Store.t;
    cache : (Page_id.t, entry) Evict.t;
    intents : (Page_id.t, int) Hashtbl.t;
    mutable hits : int;
    mutable misses : int;
    mutable touches : int;
    mutable readaheads : int;
  }

  let create ?(capacity = 64) ?(policy = Evict.Lru) store =
    {
      store;
      cache = Evict.create ~policy ~capacity ();
      intents = Hashtbl.create 8;
      hits = 0;
      misses = 0;
      touches = 0;
      readaheads = 0;
    }

  let store t = t.store
  let capacity t = Evict.capacity t.cache
  let policy t = Evict.policy t.cache
  let stats t = Store.stats t.store
  let hits t = t.hits
  let misses t = t.misses
  let touches t = t.touches
  let readaheads t = t.readaheads
  let pinned t = Evict.pinned t.cache
  let alloc t = Store.alloc t.store

  let intent t id = match Hashtbl.find_opt t.intents id with None -> 0 | Some n -> n

  let write_back t id (entry : entry) =
    if entry.dirty then begin
      Store.write t.store id entry.payload;
      entry.dirty <- false
    end

  let insert t id entry =
    (match Evict.add t.cache id entry with
    | None -> ()
    | Some (evicted_id, evicted) -> write_back t evicted_id evicted);
    (* Apply the pin intent only if the entry is not already pinned in the
       index: [Evict.add] on a resident key updates in place, and re-pinning
       there would leak a pin [unpin] (intent 1 -> 0) never releases. *)
    if intent t id > 0 && Evict.pin_count t.cache id = 0 then Evict.pin t.cache id

  let read t id =
    t.touches <- t.touches + 1;
    match Evict.find t.cache id with
    | Some entry ->
        t.hits <- t.hits + 1;
        entry.payload
    | None ->
        t.misses <- t.misses + 1;
        let payload = Store.read t.store id in
        insert t id { payload; dirty = false };
        payload

  let write t id payload =
    t.touches <- t.touches + 1;
    insert t id { payload; dirty = true }

  let mem t id = Evict.mem t.cache id || Store.mem t.store id
  let resident t id = Evict.mem t.cache id

  let mark_dirty t id =
    match Evict.peek t.cache id with
    | Some entry -> entry.dirty <- true
    | None -> ()

  let pin t id =
    let n = intent t id in
    Hashtbl.replace t.intents id (n + 1);
    if Evict.mem t.cache id then begin
      if n = 0 then Evict.pin t.cache id
    end
    else
      (* Fault the page in; [insert] applies the pin intent. *)
      ignore (read t id)

  let unpin t id =
    match Hashtbl.find_opt t.intents id with
    | None -> invalid_arg "Buffer_pool.unpin: page not pinned"
    | Some 1 ->
        Hashtbl.remove t.intents id;
        if Evict.mem t.cache id then Evict.unpin t.cache id
    | Some n -> Hashtbl.replace t.intents id (n - 1)

  let pin_count t id = intent t id

  (* Batched descent readahead: hint every not-yet-resident page of an
     anticipated root-to-leaf path in one go, so the kernel can overlap
     the faults instead of taking them serially as the descent walks. *)
  let readahead t ids =
    let missing = List.filter (fun id -> not (Evict.mem t.cache id)) ids in
    (match missing with
    | [] -> ()
    | _ ->
        t.readaheads <- t.readaheads + List.length missing;
        Io_stats.record_readaheads (Store.stats t.store) (List.length missing);
        Store.prefetch t.store missing)

  let free t id =
    Hashtbl.remove t.intents id;
    ignore (Evict.remove t.cache id);
    Store.free t.store id

  let flush t = Evict.iter (fun id entry -> write_back t id entry) t.cache

  let drop_cache t =
    flush t;
    Evict.clear t.cache
end
