module Make (Store : Page_store.S) = struct
  type entry = { payload : Store.payload; mutable dirty : bool }

  type t = {
    store : Store.t;
    cache : (Page_id.t, entry) Lru.t;
    mutable hits : int;
    mutable misses : int;
    mutable touches : int;
  }

  let create ?(capacity = 64) store =
    { store; cache = Lru.create ~capacity; hits = 0; misses = 0; touches = 0 }

  let store t = t.store
  let capacity t = Lru.capacity t.cache
  let stats t = Store.stats t.store
  let hits t = t.hits
  let misses t = t.misses
  let touches t = t.touches
  let alloc t = Store.alloc t.store

  let write_back t id (entry : entry) =
    if entry.dirty then begin
      Store.write t.store id entry.payload;
      entry.dirty <- false
    end

  let insert t id entry =
    match Lru.add t.cache id entry with
    | None -> ()
    | Some (evicted_id, evicted) -> write_back t evicted_id evicted

  let read t id =
    t.touches <- t.touches + 1;
    match Lru.find t.cache id with
    | Some entry ->
        t.hits <- t.hits + 1;
        entry.payload
    | None ->
        t.misses <- t.misses + 1;
        let payload = Store.read t.store id in
        insert t id { payload; dirty = false };
        payload

  let write t id payload =
    t.touches <- t.touches + 1;
    insert t id { payload; dirty = true }

  let mem t id = Lru.mem t.cache id || Store.mem t.store id

  let mark_dirty t id =
    match Lru.peek t.cache id with
    | Some entry -> entry.dirty <- true
    | None -> ()

  let free t id =
    ignore (Lru.remove t.cache id);
    Store.free t.store id

  let flush t = Lru.iter (fun id entry -> write_back t id entry) t.cache

  let drop_cache t =
    flush t;
    Lru.clear t.cache
end
