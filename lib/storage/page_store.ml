exception Corrupt_page of { path : string; page : Page_id.t }

module type S = sig
  type payload
  type t

  val stats : t -> Io_stats.t
  val alloc : t -> Page_id.t
  val read : t -> Page_id.t -> payload
  val write : t -> Page_id.t -> payload -> unit
  val free : t -> Page_id.t -> unit
  val mem : t -> Page_id.t -> bool
  val live_pages : t -> int

  val prefetch : t -> Page_id.t list -> unit
  (** Advisory: hint that these pages are about to be read.  No-op for
      stores with nothing to warm ({!Mem}, {!File}); {!Mmap} forwards the
      hint to the kernel.  Never charged as I/O. *)
end

module Mem (P : sig
  type t
end) =
struct
  type payload = P.t

  type t = {
    pages : payload Page_id.Tbl.t;
    mutable next_id : int;
    mutable live : int;
    stats : Io_stats.t;
  }

  let create ?(stats = Io_stats.create ()) () =
    { pages = Page_id.Tbl.create 1024; next_id = 0; live = 0; stats }

  let stats t = t.stats

  (* Ids are never reused: a freed page's id stays dangling forever, so a
     stale historical reference to a disposed page is detectably missing
     instead of silently pointing into an unrelated page. *)
  let alloc t =
    Io_stats.record_alloc t.stats;
    t.live <- t.live + 1;
    let id = Page_id.of_int t.next_id in
    t.next_id <- t.next_id + 1;
    id

  let read t id =
    Io_stats.record_read t.stats;
    Page_id.Tbl.find t.pages id

  let write t id payload =
    Io_stats.record_write t.stats;
    Page_id.Tbl.replace t.pages id payload

  let free t id =
    Io_stats.record_free t.stats;
    Page_id.Tbl.remove t.pages id;
    t.live <- t.live - 1

  let mem t id = Page_id.Tbl.mem t.pages id
  let live_pages t = t.live
  let prefetch _ _ = ()

  let ids t =
    Page_id.Tbl.fold (fun id _ acc -> id :: acc) t.pages []
    |> List.sort (fun a b -> Int.compare (Page_id.to_int a) (Page_id.to_int b))

  let reserve t ~next = if next > t.next_id then t.next_id <- next

  let install t id payload =
    if not (Page_id.Tbl.mem t.pages id) then t.live <- t.live + 1;
    Page_id.Tbl.replace t.pages id payload;
    reserve t ~next:(Page_id.to_int id + 1)
end

module type PAGE_CODEC = sig
  type t

  val encode : Codec.Writer.t -> t -> unit
  val decode : Codec.Reader.t -> t
end

(* Freed page ids are persisted to a small sidecar ([path ^ ".free"],
   CRC-framed, rewritten atomically on every [sync] and on [close]) so a
   reopen does not resurrect pages freed before the restart.  The sidecar
   is a hint, not a ledger: if it is stale (crash after frees but before
   the next sync) or torn, reopen degrades {e conservatively} — some
   freed pages come back as written and [live_pages] overcounts — but a
   reopen after a clean [sync]/[close] restores liveness exactly.  Shared
   verbatim by {!File} and {!Mmap}, which therefore stay
   sidecar-compatible with each other. *)
module Freed_sidecar = struct
  let magic = "PGSTFREE"
  let path_of path = path ^ ".free"

  let save ~vfs ~path freed =
    let n = Page_id.Tbl.length freed in
    let len = String.length magic + 4 + (n * 8) in
    let w = Codec.Writer.create (len + 4) in
    String.iter (fun ch -> Codec.Writer.u8 w (Char.code ch)) magic;
    Codec.Writer.i32 w n;
    Page_id.Tbl.iter (fun id () -> Codec.Writer.i64 w (Page_id.to_int id)) freed;
    let buf = Codec.Writer.contents w in
    (* Unsigned 32-bit CRC: splice raw rather than through Writer.i32. *)
    Bytes.set_int32_le buf len (Int32.of_int (Codec.crc32 buf ~pos:0 ~len));
    Vfs.write_file_atomic vfs ~path:(path_of path) buf ~len:(len + 4)

  let load ~vfs ~path =
    let freed = Page_id.Tbl.create 64 in
    let file = path_of path in
    (try
       let buf = Vfs.read_file vfs file in
       let size = Bytes.length buf in
       let rd = Codec.Reader.create buf in
       let got_magic =
         String.init (String.length magic) (fun _ -> Char.chr (Codec.Reader.u8 rd))
       in
       let n = Codec.Reader.i32 rd in
       let payload = String.length magic + 4 + (n * 8) in
       if got_magic <> magic || n < 0 || size <> payload + 4 then raise Exit;
       let ids = List.init n (fun _ -> Codec.Reader.i64 rd) in
       let crc = Codec.Reader.i32 rd land 0xFFFFFFFF in
       if Codec.crc32 buf ~pos:0 ~len:payload <> crc then raise Exit;
       List.iter (fun id -> Page_id.Tbl.replace freed (Page_id.of_int id) ()) ids
     with _ -> Page_id.Tbl.reset freed (* absent or torn: conservative *));
    freed

  let remove ~vfs ~path =
    try vfs.Vfs.v_remove (path_of path)
    with Sys_error _ | Storage_error.Io _ -> ()
end

module File (C : PAGE_CODEC) = struct
  type payload = C.t

  type t = {
    file : Vfs.file;
    vfs : Vfs.t;
    path : string;
    page_size : int;
    mutable next_id : int;
    written : unit Page_id.Tbl.t;
    freed : unit Page_id.Tbl.t;
    mutable live : int;
    stats : Io_stats.t;
    tracer : Telemetry.Tracer.t;
  }

  (* Every page block carries its own CRC32 frame so bit-rot anywhere in
     the file is detected at read time, not silently decoded:

       offset 0        4        8                      page_size
              | len 4B | crc 4B | payload (len bytes) | padding |

     The CRC covers the payload only; [len] is validated against the block
     geometry before the checksum runs, so a corrupt length cannot read
     out of bounds. *)
  let block_overhead = 8

  (* Block 0 of the file is a CRC-framed header; pages occupy blocks 1..
     The header lets a reopen verify it is looking at a page file of the
     expected geometry rather than decoding arbitrary bytes.  Version 2:
     per-page checksummed blocks. *)
  let header_magic = "PGSTORE2"
  let header_payload_bytes = String.length header_magic + 4

  let write_header file ~page_size =
    let w = Codec.Writer.create page_size in
    Codec.Writer.i32 w header_payload_bytes;
    Codec.Writer.i32 w 0 (* crc placeholder *);
    String.iter (fun ch -> Codec.Writer.u8 w (Char.code ch)) header_magic;
    Codec.Writer.i32 w page_size;
    let buf = Codec.Writer.contents w in
    let crc = Codec.crc32 buf ~pos:8 ~len:header_payload_bytes in
    Bytes.set_int32_le buf 4 (Int32.of_int crc);
    file.Vfs.f_pwrite 0 buf 0 (Bytes.length buf)

  let read_header file ~page_size =
    let buf = Bytes.create page_size in
    let got = file.Vfs.f_pread 0 buf 0 page_size in
    if got < page_size then failwith "Page_store.File: truncated header";
    let rd = Codec.Reader.create buf in
    let len = Codec.Reader.i32 rd in
    (* Reader.i32 sign-extends; the CRC is an unsigned 32-bit value. *)
    let crc = Codec.Reader.i32 rd land 0xFFFFFFFF in
    if len <> header_payload_bytes then failwith "Page_store.File: bad header length";
    if Codec.crc32 buf ~pos:8 ~len <> crc then
      failwith "Page_store.File: header checksum mismatch";
    let magic = String.init (String.length header_magic) (fun _ -> Char.chr (Codec.Reader.u8 rd)) in
    if magic <> header_magic then failwith "Page_store.File: bad header magic";
    let stored = Codec.Reader.i32 rd in
    if stored <> page_size then
      failwith
        (Printf.sprintf "Page_store.File: page size mismatch (file has %d, asked for %d)"
           stored page_size)

  let create ?(stats = Io_stats.create ()) ?(page_size = 4096) ?(mode = `Create)
      ?(vfs = Vfs.os) ?(tracer = Telemetry.Tracer.noop) ~path () =
    if page_size < 32 + block_overhead then invalid_arg "Page_store.File: page_size too small";
    match mode with
    | `Create ->
        let file = vfs.Vfs.v_open `Create path in
        write_header file ~page_size;
        Freed_sidecar.remove ~vfs ~path;
        { file; vfs; path; page_size; next_id = 0; written = Page_id.Tbl.create 1024;
          freed = Page_id.Tbl.create 64; live = 0; stats; tracer }
    | `Reopen ->
        let file = vfs.Vfs.v_open `Reopen path in
        (try read_header file ~page_size
         with e ->
           file.Vfs.f_close ();
           raise e);
        let len = file.Vfs.f_size () in
        (* Only complete page blocks count; a torn trailing page is ignored
           (its id will be rewritten by the recovery replay). *)
        let next_id = max 0 ((len / page_size) - 1) in
        let freed = Freed_sidecar.load ~vfs ~path in
        (* Ids at or past next_id cannot be in the file; drop them so the
           sidecar of a longer previous incarnation cannot mask new pages. *)
        Page_id.Tbl.fold
          (fun id () acc -> if Page_id.to_int id >= next_id then id :: acc else acc)
          freed []
        |> List.iter (Page_id.Tbl.remove freed);
        let written = Page_id.Tbl.create 1024 in
        for i = 0 to next_id - 1 do
          let id = Page_id.of_int i in
          if not (Page_id.Tbl.mem freed id) then Page_id.Tbl.replace written id ()
        done;
        { file; vfs; path; page_size; next_id; written; freed;
          live = Page_id.Tbl.length written; stats; tracer }

  let stats t = t.stats
  let page_size t = t.page_size

  (* As in {!Mem}: ids are never reused. *)
  let alloc t =
    Io_stats.record_alloc t.stats;
    t.live <- t.live + 1;
    let id = Page_id.of_int t.next_id in
    t.next_id <- t.next_id + 1;
    id

  let offset t id = (1 + Page_id.to_int id) * t.page_size

  let read_block t id =
    let buf = Bytes.create t.page_size in
    let got = t.file.Vfs.f_pread (offset t id) buf 0 t.page_size in
    if got < t.page_size then
      (* The file ends inside this page: data loss, not a transient
         glitch — retrying the read cannot grow the file. *)
      Storage_error.raise_io ~op:Storage_error.Pread ~path:t.path ~transient:false
        (Storage_error.Short_read { expected = t.page_size; got });
    buf

  let write_block t id buf =
    if Bytes.length buf <> t.page_size then
      invalid_arg "Page_store.File: write_block needs exactly one page";
    t.file.Vfs.f_pwrite (offset t id) buf 0 t.page_size

  let check_block t buf =
    let len = Int32.to_int (Bytes.get_int32_le buf 0) in
    if len < 0 || len > t.page_size - block_overhead then false
    else begin
      let crc = Int32.to_int (Bytes.get_int32_le buf 4) land 0xFFFFFFFF in
      Codec.crc32 buf ~pos:block_overhead ~len = crc
    end

  let page_attr id () = [ ("page", Telemetry.Tracer.Int (Page_id.to_int id)) ]

  let read t id =
    if not (Page_id.Tbl.mem t.written id) then raise Not_found;
    Telemetry.Tracer.with_span t.tracer ~level:`Debug "page.read" ~attrs:(page_attr id) @@ fun () ->
    Io_stats.record_read t.stats;
    let buf = read_block t id in
    if not (check_block t buf) then begin
      Io_stats.record_crc_failure t.stats;
      raise (Corrupt_page { path = t.path; page = id })
    end;
    let len = Int32.to_int (Bytes.get_int32_le buf 0) in
    C.decode (Codec.Reader.create (Bytes.sub buf block_overhead len))

  let write t id payload =
    Telemetry.Tracer.with_span t.tracer ~level:`Debug "page.write" ~attrs:(page_attr id) @@ fun () ->
    Io_stats.record_write t.stats;
    let w = Codec.Writer.create t.page_size in
    Codec.Writer.i32 w 0 (* len placeholder *);
    Codec.Writer.i32 w 0 (* crc placeholder *);
    C.encode w payload;
    let len = Codec.Writer.pos w - block_overhead in
    let buf = Codec.Writer.contents w in
    Bytes.set_int32_le buf 0 (Int32.of_int len);
    (* Unsigned 32-bit CRC: splice raw rather than through Writer.i32. *)
    Bytes.set_int32_le buf 4 (Int32.of_int (Codec.crc32 buf ~pos:block_overhead ~len));
    t.file.Vfs.f_pwrite (offset t id) buf 0 (Bytes.length buf);
    Page_id.Tbl.remove t.freed id;
    Page_id.Tbl.replace t.written id ()

  let verify t id =
    if not (Page_id.Tbl.mem t.written id) then raise Not_found;
    let ok = check_block t (read_block t id) in
    if not ok then Io_stats.record_crc_failure t.stats;
    ok

  let free t id =
    Io_stats.record_free t.stats;
    Page_id.Tbl.remove t.written id;
    Page_id.Tbl.replace t.freed id ();
    t.live <- t.live - 1

  let mem t id = Page_id.Tbl.mem t.written id
  let live_pages t = t.live

  let written_ids t =
    Page_id.Tbl.fold (fun id () acc -> id :: acc) t.written []
    |> List.sort (fun a b -> compare (Page_id.to_int a) (Page_id.to_int b))

  let sync t =
    Telemetry.Tracer.with_span t.tracer ~level:`Debug "page.sync" @@ fun () ->
    Io_stats.record_sync t.stats;
    t.file.Vfs.f_sync ();
    Freed_sidecar.save ~vfs:t.vfs ~path:t.path t.freed

  let close t =
    (try Freed_sidecar.save ~vfs:t.vfs ~path:t.path t.freed with _ -> ());
    t.file.Vfs.f_close ()

  let file_size_bytes t = (1 + t.next_id) * t.page_size
  let prefetch _ _ = ()

  (* Install a page under an explicit id — materialising a snapshot into
     a fresh page file.  Unlike {!Mem.install} the physical write is real
     and charged; what is skipped is the alloc (the id was allocated in a
     previous life and must stay fixed). *)
  let install t id payload =
    let fresh = not (Page_id.Tbl.mem t.written id) in
    write t id payload;
    if fresh then t.live <- t.live + 1;
    if Page_id.to_int id + 1 > t.next_id then t.next_id <- Page_id.to_int id + 1
end

module type ZPAGE_CODEC = sig
  type t

  val encode : Zcodec.Writer.t -> t -> unit
  val decode : Zcodec.Reader.t -> t
end

module Mmap (C : ZPAGE_CODEC) = struct
  type payload = C.t

  type t = {
    arena : Arena.t;
    vfs : Vfs.t;
    path : string;
    page_size : int;
    mutable next_id : int;
    mutable committed_next_id : int;
    written : unit Page_id.Tbl.t;
    freed : unit Page_id.Tbl.t;
    mutable live : int;
    stats : Io_stats.t;
    tracer : Telemetry.Tracer.t;
  }

  (* Byte layout is {!File}'s, block for block — header in block 0, page
     [id] in block [1 + id], each page framed [len][crc32][payload] — so
     the scrub/repair machinery and the corruption tests see the same
     geometry on both.  Two deliberate differences:

     - the arena grows by doubling, so the file's physical length runs
       ahead of the used prefix; [next_id] therefore cannot be derived
       from the file length as {!File} does and is carried in the header
       instead, rewritten on every {!sync} ({e after} the data ranges are
       flushed — a crash between the two leaves the old header pointing
       at the old, fully-flushed prefix);
     - the header magic differs ("PGSTORM1" vs "PGSTORE2") precisely so a
       [File] reopen cannot mistake an arena file's length for its page
       count. *)
  let block_overhead = 8
  let header_magic = "PGSTORM1"
  let header_payload_bytes = String.length header_magic + 4 + 8

  let write_header t =
    let buf = Arena.buffer t.arena in
    let w = Zcodec.Writer.create buf ~off:8 ~len:(t.page_size - 8) in
    String.iter (fun ch -> Zcodec.Writer.u8 w (Char.code ch)) header_magic;
    Zcodec.Writer.i32 w t.page_size;
    Zcodec.Writer.i64 w t.next_id;
    Zcodec.set_i32 buf 0 header_payload_bytes;
    Zcodec.set_i32 buf 4 (Zcodec.crc32 buf ~pos:8 ~len:header_payload_bytes);
    Arena.mark_dirty t.arena ~block:0

  let read_header arena ~page_size ~path =
    let buf = Arena.buffer arena in
    if Bigarray.Array1.dim buf < page_size then
      failwith "Page_store.Mmap: truncated header";
    let len = Zcodec.get_i32 buf 0 in
    let crc = Zcodec.get_i32 buf 4 land 0xFFFFFFFF in
    if len <> header_payload_bytes then failwith "Page_store.Mmap: bad header length";
    if Zcodec.crc32 buf ~pos:8 ~len <> crc then
      failwith "Page_store.Mmap: header checksum mismatch";
    let rd = Zcodec.Reader.create buf ~off:8 ~len in
    let magic =
      String.init (String.length header_magic) (fun _ -> Char.chr (Zcodec.Reader.u8 rd))
    in
    if magic <> header_magic then failwith "Page_store.Mmap: bad header magic";
    let stored = Zcodec.Reader.i32 rd in
    if stored <> page_size then
      failwith
        (Printf.sprintf "Page_store.Mmap: page size mismatch (file has %d, asked for %d)"
           stored page_size);
    let next_id = Zcodec.Reader.i64 rd in
    if next_id < 0 then failwith (Printf.sprintf "Page_store.Mmap: bad page count in %s" path);
    next_id

  let create ?(stats = Io_stats.create ()) ?(page_size = 4096) ?(mode = `Create)
      ?(vfs = Vfs.os) ?(tracer = Telemetry.Tracer.noop) ?(backing = `Auto) ~path () =
    if page_size < 32 + block_overhead then
      invalid_arg "Page_store.Mmap: page_size too small";
    let arena =
      Arena.create ~vfs ~backing ~block_size:page_size ~path
        ~mode:(match mode with `Create -> `Create | `Reopen -> `Reopen)
        ()
    in
    match mode with
    | `Create ->
        let t =
          { arena; vfs; path; page_size; next_id = 0; committed_next_id = 0;
            written = Page_id.Tbl.create 1024; freed = Page_id.Tbl.create 64; live = 0;
            stats; tracer }
        in
        Freed_sidecar.remove ~vfs ~path;
        write_header t;
        Arena.sync arena;
        t
    | `Reopen ->
        let next_id =
          try read_header arena ~page_size ~path
          with e ->
            Arena.close arena;
            raise e
        in
        let freed = Freed_sidecar.load ~vfs ~path in
        (* Ids at or past next_id were not committed; drop them so the
           sidecar of a longer previous incarnation cannot mask new pages. *)
        Page_id.Tbl.fold
          (fun id () acc -> if Page_id.to_int id >= next_id then id :: acc else acc)
          freed []
        |> List.iter (Page_id.Tbl.remove freed);
        let written = Page_id.Tbl.create 1024 in
        for i = 0 to next_id - 1 do
          let id = Page_id.of_int i in
          if not (Page_id.Tbl.mem freed id) then Page_id.Tbl.replace written id ()
        done;
        { arena; vfs; path; page_size; next_id; committed_next_id = next_id; written;
          freed; live = Page_id.Tbl.length written; stats; tracer }

  let stats t = t.stats
  let page_size t = t.page_size
  let backing t = Arena.backing t.arena
  let remaps t = Arena.remaps t.arena

  (* As in {!Mem}: ids are never reused. *)
  let alloc t =
    Io_stats.record_alloc t.stats;
    t.live <- t.live + 1;
    let id = Page_id.of_int t.next_id in
    t.next_id <- t.next_id + 1;
    id

  let block_of id = 1 + Page_id.to_int id
  let offset t id = block_of id * t.page_size

  let check_block t buf ~off =
    (* A committed id whose block lies beyond the mapped capacity (file
       truncated out from under the header) is corruption, not a codec
       range error. *)
    if off < 0 || off + t.page_size > Bigarray.Array1.dim buf then false
    else
      let len = Zcodec.get_i32 buf off in
      if len < 0 || len > t.page_size - block_overhead then false
      else
        let crc = Zcodec.get_i32 buf (off + 4) land 0xFFFFFFFF in
        Zcodec.crc32 buf ~pos:(off + block_overhead) ~len = crc

  let page_attr id () = [ ("page", Telemetry.Tracer.Int (Page_id.to_int id)) ]

  let read t id =
    if not (Page_id.Tbl.mem t.written id) then raise Not_found;
    Telemetry.Tracer.with_span t.tracer ~level:`Debug "page.read" ~attrs:(page_attr id)
    @@ fun () ->
    (* Still one logical page transfer — the quantity the cost model and
       the Theorem-1/2 bound checker count — even though no syscall runs;
       [mapped_reads] isolates the zero-copy share. *)
    Io_stats.record_read t.stats;
    Io_stats.record_mapped_read t.stats;
    let buf = Arena.buffer t.arena in
    let off = offset t id in
    if not (check_block t buf ~off) then begin
      Io_stats.record_crc_failure t.stats;
      raise (Corrupt_page { path = t.path; page = id })
    end;
    let len = Zcodec.get_i32 buf off in
    C.decode (Zcodec.Reader.create buf ~off:(off + block_overhead) ~len)

  let write t id payload =
    Telemetry.Tracer.with_span t.tracer ~level:`Debug "page.write" ~attrs:(page_attr id)
    @@ fun () ->
    Io_stats.record_write t.stats;
    Io_stats.record_mapped_write t.stats;
    Arena.ensure t.arena ~blocks:(block_of id + 1);
    let buf = Arena.buffer t.arena in
    let off = offset t id in
    let w = Zcodec.Writer.create buf ~off:(off + block_overhead)
        ~len:(t.page_size - block_overhead)
    in
    C.encode w payload;
    let len = Zcodec.Writer.pos w in
    Zcodec.set_i32 buf off len;
    Zcodec.set_i32 buf (off + 4) (Zcodec.crc32 buf ~pos:(off + block_overhead) ~len);
    Arena.mark_dirty t.arena ~block:(block_of id);
    Page_id.Tbl.remove t.freed id;
    Page_id.Tbl.replace t.written id ()

  let read_block t id =
    let buf = Bytes.create t.page_size in
    Zcodec.blit_to_bytes (Arena.buffer t.arena) (offset t id) buf 0 t.page_size;
    buf

  let write_block t id buf =
    if Bytes.length buf <> t.page_size then
      invalid_arg "Page_store.Mmap: write_block needs exactly one page";
    Arena.ensure t.arena ~blocks:(block_of id + 1);
    Zcodec.blit_of_bytes buf 0 (Arena.buffer t.arena) (offset t id) t.page_size;
    Arena.mark_dirty t.arena ~block:(block_of id)

  let verify t id =
    if not (Page_id.Tbl.mem t.written id) then raise Not_found;
    let ok = check_block t (Arena.buffer t.arena) ~off:(offset t id) in
    if not ok then Io_stats.record_crc_failure t.stats;
    ok

  (* The page-disposal "punch": besides retiring the id, the block's
     frame is zeroed in the mapping so a disposed page cannot be
     resurrected by a stale sidecar into decodable-looking bytes — a
     resurrected zeroed block fails its CRC frame loudly instead. *)
  let free t id =
    Io_stats.record_free t.stats;
    Page_id.Tbl.remove t.written id;
    Page_id.Tbl.replace t.freed id ();
    t.live <- t.live - 1;
    if block_of id < Arena.capacity_blocks t.arena then begin
      let buf = Arena.buffer t.arena in
      let off = offset t id in
      Zcodec.set_i32 buf off (-1) (* an invalid length: never CRC-valid *);
      Zcodec.set_i32 buf (off + 4) 0;
      Arena.mark_dirty t.arena ~block:(block_of id)
    end

  let mem t id = Page_id.Tbl.mem t.written id
  let live_pages t = t.live

  let written_ids t =
    Page_id.Tbl.fold (fun id () acc -> id :: acc) t.written []
    |> List.sort (fun a b -> compare (Page_id.to_int a) (Page_id.to_int b))

  (* Durability order: data ranges first, then the header naming the new
     committed prefix, then the freed sidecar.  A crash after the first
     barrier but before the second leaves the old header over fully
     flushed data — the reopened store just sees the shorter committed
     prefix, which recovery replay rewrites. *)
  let sync t =
    Telemetry.Tracer.with_span t.tracer ~level:`Debug "page.sync" @@ fun () ->
    Io_stats.record_sync t.stats;
    let before = Arena.msync_ranges t.arena in
    Arena.sync t.arena;
    if t.committed_next_id <> t.next_id then begin
      write_header t;
      Arena.sync t.arena;
      t.committed_next_id <- t.next_id
    end;
    Io_stats.record_msync_ranges t.stats (Arena.msync_ranges t.arena - before);
    Freed_sidecar.save ~vfs:t.vfs ~path:t.path t.freed

  let prefetch t ids =
    List.iter
      (fun id ->
        if Page_id.Tbl.mem t.written id then
          Arena.willneed t.arena ~block:(block_of id) ~count:1)
      ids

  let close t =
    (try Freed_sidecar.save ~vfs:t.vfs ~path:t.path t.freed with _ -> ());
    Arena.close t.arena

  let file_size_bytes t = (1 + t.next_id) * t.page_size
  let mapped_capacity_bytes t = Arena.file_size_bytes t.arena

  (* See {!File.install}. *)
  let install t id payload =
    let fresh = not (Page_id.Tbl.mem t.written id) in
    write t id payload;
    if fresh then t.live <- t.live + 1;
    if Page_id.to_int id + 1 > t.next_id then t.next_id <- Page_id.to_int id + 1
end
