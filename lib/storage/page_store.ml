module type S = sig
  type payload
  type t

  val stats : t -> Io_stats.t
  val alloc : t -> Page_id.t
  val read : t -> Page_id.t -> payload
  val write : t -> Page_id.t -> payload -> unit
  val free : t -> Page_id.t -> unit
  val mem : t -> Page_id.t -> bool
  val live_pages : t -> int
end

module Mem (P : sig
  type t
end) =
struct
  type payload = P.t

  type t = {
    pages : payload Page_id.Tbl.t;
    mutable next_id : int;
    mutable live : int;
    stats : Io_stats.t;
  }

  let create ?(stats = Io_stats.create ()) () =
    { pages = Page_id.Tbl.create 1024; next_id = 0; live = 0; stats }

  let stats t = t.stats

  (* Ids are never reused: a freed page's id stays dangling forever, so a
     stale historical reference to a disposed page is detectably missing
     instead of silently pointing into an unrelated page. *)
  let alloc t =
    Io_stats.record_alloc t.stats;
    t.live <- t.live + 1;
    let id = Page_id.of_int t.next_id in
    t.next_id <- t.next_id + 1;
    id

  let read t id =
    Io_stats.record_read t.stats;
    Page_id.Tbl.find t.pages id

  let write t id payload =
    Io_stats.record_write t.stats;
    Page_id.Tbl.replace t.pages id payload

  let free t id =
    Io_stats.record_free t.stats;
    Page_id.Tbl.remove t.pages id;
    t.live <- t.live - 1

  let mem t id = Page_id.Tbl.mem t.pages id
  let live_pages t = t.live

  let reserve t ~next = if next > t.next_id then t.next_id <- next

  let install t id payload =
    if not (Page_id.Tbl.mem t.pages id) then t.live <- t.live + 1;
    Page_id.Tbl.replace t.pages id payload;
    reserve t ~next:(Page_id.to_int id + 1)
end

module type PAGE_CODEC = sig
  type t

  val encode : Codec.Writer.t -> t -> unit
  val decode : Codec.Reader.t -> t
end

module File (C : PAGE_CODEC) = struct
  type payload = C.t

  type t = {
    fd : Unix.file_descr;
    path : string;
    page_size : int;
    mutable next_id : int;
    written : unit Page_id.Tbl.t;
    freed : unit Page_id.Tbl.t;
    mutable live : int;
    stats : Io_stats.t;
  }

  (* Block 0 of the file is a CRC-framed header; pages occupy blocks 1..
     The header lets a reopen verify it is looking at a page file of the
     expected geometry rather than decoding arbitrary bytes. *)
  let header_magic = "PGSTORE1"
  let header_payload_bytes = String.length header_magic + 4

  let write_header fd ~page_size =
    let w = Codec.Writer.create page_size in
    Codec.Writer.i32 w header_payload_bytes;
    Codec.Writer.i32 w 0 (* crc placeholder *);
    String.iter (fun ch -> Codec.Writer.u8 w (Char.code ch)) header_magic;
    Codec.Writer.i32 w page_size;
    let buf = Codec.Writer.contents w in
    let crc = Codec.crc32 buf ~pos:8 ~len:header_payload_bytes in
    Bytes.set_int32_le buf 4 (Int32.of_int crc);
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let len = Bytes.length buf in
    let rec loop off =
      if off < len then loop (off + Unix.write fd buf off (len - off))
    in
    loop 0

  let read_header fd ~page_size =
    let buf = Bytes.create page_size in
    ignore (Unix.lseek fd 0 Unix.SEEK_SET);
    let rec loop off =
      if off < page_size then begin
        let n = Unix.read fd buf off (page_size - off) in
        if n = 0 then failwith "Page_store.File: truncated header";
        loop (off + n)
      end
    in
    loop 0;
    let rd = Codec.Reader.create buf in
    let len = Codec.Reader.i32 rd in
    (* Reader.i32 sign-extends; the CRC is an unsigned 32-bit value. *)
    let crc = Codec.Reader.i32 rd land 0xFFFFFFFF in
    if len <> header_payload_bytes then failwith "Page_store.File: bad header length";
    if Codec.crc32 buf ~pos:8 ~len <> crc then
      failwith "Page_store.File: header checksum mismatch";
    let magic = String.init (String.length header_magic) (fun _ -> Char.chr (Codec.Reader.u8 rd)) in
    if magic <> header_magic then failwith "Page_store.File: bad header magic";
    let stored = Codec.Reader.i32 rd in
    if stored <> page_size then
      failwith
        (Printf.sprintf "Page_store.File: page size mismatch (file has %d, asked for %d)"
           stored page_size)

  (* Freed page ids are persisted to a small sidecar ([path ^ ".free"],
     CRC-framed, rewritten atomically on every [sync] and on [close]) so a
     reopen does not resurrect pages freed before the restart.  The
     sidecar is a hint, not a ledger: if it is stale (crash after frees
     but before the next sync) or torn, reopen degrades {e conservatively}
     — some freed pages come back as written and [live_pages] overcounts —
     but a reopen after a clean [sync]/[close] restores liveness exactly. *)
  let free_sidecar_magic = "PGSTFREE"

  let free_sidecar_path path = path ^ ".free"

  let save_freed ~path freed =
    let n = Page_id.Tbl.length freed in
    let len = String.length free_sidecar_magic + 4 + (n * 8) in
    let w = Codec.Writer.create (len + 4) in
    String.iter (fun ch -> Codec.Writer.u8 w (Char.code ch)) free_sidecar_magic;
    Codec.Writer.i32 w n;
    Page_id.Tbl.iter (fun id () -> Codec.Writer.i64 w (Page_id.to_int id)) freed;
    let buf = Codec.Writer.contents w in
    (* Unsigned 32-bit CRC: splice raw rather than through Writer.i32. *)
    Bytes.set_int32_le buf len (Int32.of_int (Codec.crc32 buf ~pos:0 ~len));
    let tmp = free_sidecar_path path ^ ".tmp" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
    Fun.protect
      ~finally:(fun () -> Unix.close fd)
      (fun () ->
        let rec loop off =
          if off < Bytes.length buf then
            loop (off + Unix.write fd buf off (Bytes.length buf - off))
        in
        loop 0;
        Unix.fsync fd);
    Sys.rename tmp (free_sidecar_path path)

  let load_freed ~path =
    let freed = Page_id.Tbl.create 64 in
    let file = free_sidecar_path path in
    (try
       let ic = open_in_bin file in
       Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
       let size = in_channel_length ic in
       let buf = Bytes.create size in
       really_input ic buf 0 size;
       let rd = Codec.Reader.create buf in
       let magic =
         String.init (String.length free_sidecar_magic) (fun _ -> Char.chr (Codec.Reader.u8 rd))
       in
       let n = Codec.Reader.i32 rd in
       let payload = String.length free_sidecar_magic + 4 + (n * 8) in
       if magic <> free_sidecar_magic || n < 0 || size <> payload + 4 then raise Exit;
       let ids = List.init n (fun _ -> Codec.Reader.i64 rd) in
       let crc = Codec.Reader.i32 rd land 0xFFFFFFFF in
       if Codec.crc32 buf ~pos:0 ~len:payload <> crc then raise Exit;
       List.iter (fun id -> Page_id.Tbl.replace freed (Page_id.of_int id) ()) ids
     with _ -> Page_id.Tbl.reset freed (* absent or torn: conservative *));
    freed

  let create ?(stats = Io_stats.create ()) ?(page_size = 4096) ?(mode = `Create) ~path () =
    if page_size < 32 then invalid_arg "Page_store.File: page_size too small";
    match mode with
    | `Create ->
        let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
        write_header fd ~page_size;
        (try Sys.remove (free_sidecar_path path) with Sys_error _ -> ());
        { fd; path; page_size; next_id = 0; written = Page_id.Tbl.create 1024;
          freed = Page_id.Tbl.create 64; live = 0; stats }
    | `Reopen ->
        let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
        (try read_header fd ~page_size
         with e ->
           Unix.close fd;
           raise e);
        let len = (Unix.fstat fd).Unix.st_size in
        (* Only complete page blocks count; a torn trailing page is ignored
           (its id will be rewritten by the recovery replay). *)
        let next_id = max 0 ((len / page_size) - 1) in
        let freed = load_freed ~path in
        (* Ids at or past next_id cannot be in the file; drop them so the
           sidecar of a longer previous incarnation cannot mask new pages. *)
        Page_id.Tbl.fold
          (fun id () acc -> if Page_id.to_int id >= next_id then id :: acc else acc)
          freed []
        |> List.iter (Page_id.Tbl.remove freed);
        let written = Page_id.Tbl.create 1024 in
        for i = 0 to next_id - 1 do
          let id = Page_id.of_int i in
          if not (Page_id.Tbl.mem freed id) then Page_id.Tbl.replace written id ()
        done;
        { fd; path; page_size; next_id; written; freed;
          live = Page_id.Tbl.length written; stats }

  let stats t = t.stats
  let page_size t = t.page_size

  (* As in {!Mem}: ids are never reused. *)
  let alloc t =
    Io_stats.record_alloc t.stats;
    t.live <- t.live + 1;
    let id = Page_id.of_int t.next_id in
    t.next_id <- t.next_id + 1;
    id

  let offset t id = (1 + Page_id.to_int id) * t.page_size

  let really_read fd buf =
    let len = Bytes.length buf in
    let rec loop off =
      if off < len then begin
        let n = Unix.read fd buf off (len - off) in
        if n = 0 then failwith "Page_store.File: short read";
        loop (off + n)
      end
    in
    loop 0

  let really_write fd buf =
    let len = Bytes.length buf in
    let rec loop off =
      if off < len then begin
        let n = Unix.write fd buf off (len - off) in
        loop (off + n)
      end
    in
    loop 0

  let read t id =
    if not (Page_id.Tbl.mem t.written id) then raise Not_found;
    Io_stats.record_read t.stats;
    ignore (Unix.lseek t.fd (offset t id) Unix.SEEK_SET);
    let buf = Bytes.create t.page_size in
    really_read t.fd buf;
    C.decode (Codec.Reader.create buf)

  let write t id payload =
    Io_stats.record_write t.stats;
    let w = Codec.Writer.create t.page_size in
    C.encode w payload;
    ignore (Unix.lseek t.fd (offset t id) Unix.SEEK_SET);
    really_write t.fd (Codec.Writer.contents w);
    Page_id.Tbl.remove t.freed id;
    Page_id.Tbl.replace t.written id ()

  let free t id =
    Io_stats.record_free t.stats;
    Page_id.Tbl.remove t.written id;
    Page_id.Tbl.replace t.freed id ();
    t.live <- t.live - 1

  let mem t id = Page_id.Tbl.mem t.written id
  let live_pages t = t.live

  let sync t =
    Io_stats.record_sync t.stats;
    Unix.fsync t.fd;
    save_freed ~path:t.path t.freed

  let close t =
    (try save_freed ~path:t.path t.freed with _ -> ());
    Unix.close t.fd
  let file_size_bytes t = (1 + t.next_id) * t.page_size
end
