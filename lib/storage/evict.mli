(** Fixed-capacity cache index with pluggable eviction and pin counts.

    Backs {!Buffer_pool}.  One structure serves two replacement policies:

    - {!Lru} — exact recency: {!find} moves the entry to the front and the
      victim is the least-recently-used unpinned entry (the policy the
      paper's experiments assume);
    - {!Second_chance} — the clock approximation: {!find} only sets a
      reference bit; the victim search sweeps from the cold end, giving
      each referenced entry one more lap (bit cleared, entry recycled to
      the hot end) and skipping pinned entries.  At most two sweeps run
      before the search gives up.

    Pinned entries ([pin_count > 0]) are never evicted under either
    policy.  When every entry is pinned, {!add} {e overcommits}: the
    cache grows past capacity rather than evicting a page someone holds a
    pointer into — mandatory once callers read records straight out of
    mapped pages.  Keys are hashed with the polymorphic hash, adequate
    for the integer-like keys used here ({!Page_id.t}). *)

type policy = Lru | Second_chance

val policy_name : policy -> string
(** ["lru"], ["second-chance"]. *)

type ('k, 'v) t

val create : ?policy:policy -> capacity:int -> unit -> ('k, 'v) t
(** [policy] defaults to {!Lru}.
    @raise Invalid_argument if [capacity < 1]. *)

val policy : ('k, 'v) t -> policy
val capacity : ('k, 'v) t -> int
val length : ('k, 'v) t -> int

val find : ('k, 'v) t -> 'k -> 'v option
(** Returns the value and records the access (recency promotion under
    {!Lru}, reference bit under {!Second_chance}). *)

val peek : ('k, 'v) t -> 'k -> 'v option
(** Returns the value without recording an access. *)

val mem : ('k, 'v) t -> 'k -> bool

val add : ('k, 'v) t -> 'k -> 'v -> ('k * 'v) option
(** Insert or replace, recording an access.  When the insert pushes the
    cache past capacity, an unpinned victim is chosen by the policy,
    removed, and returned for write-back.  Returns [None] when nothing
    was evicted — including the overcommit case where every resident
    entry is pinned. *)

val remove : ('k, 'v) t -> 'k -> 'v option
(** Drop an entry (pinned or not) without treating it as an eviction. *)

val pin : ('k, 'v) t -> 'k -> unit
(** Increment the entry's pin count.
    @raise Invalid_argument if the key is not resident — pinning an
    absent page is always a caller bug. *)

val unpin : ('k, 'v) t -> 'k -> unit
(** @raise Invalid_argument if the key is not resident or not pinned
    (unbalanced unpin). *)

val pin_count : ('k, 'v) t -> 'k -> int
(** 0 if absent. *)

val pinned : ('k, 'v) t -> int
(** Number of resident entries with [pin_count > 0]. *)

val iter : ('k -> 'v -> unit) -> ('k, 'v) t -> unit
(** Iterates from hot to cold end.  [f] may remove the current entry. *)

val fold : ('k -> 'v -> 'acc -> 'acc) -> ('k, 'v) t -> 'acc -> 'acc
val clear : ('k, 'v) t -> unit
(** Drops everything, including pinned entries (callers only clear after
    quiescing readers). *)
