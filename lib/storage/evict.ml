type policy = Lru | Second_chance

let policy_name = function Lru -> "lru" | Second_chance -> "second-chance"

type ('k, 'v) node = {
  key : 'k;
  mutable value : 'v;
  mutable pins : int;
  mutable referenced : bool;
  mutable prev : ('k, 'v) node option;
  mutable next : ('k, 'v) node option;
}

(* [head] is the hot end (most recently used / just behind the clock
   hand), [tail] the cold end (LRU victim / clock hand position). *)
type ('k, 'v) t = {
  pol : policy;
  cap : int;
  table : ('k, ('k, 'v) node) Hashtbl.t;
  mutable head : ('k, 'v) node option;
  mutable tail : ('k, 'v) node option;
  mutable n_pinned : int;
}

let create ?(policy = Lru) ~capacity () =
  if capacity < 1 then invalid_arg "Evict.create: capacity must be >= 1";
  {
    pol = policy;
    cap = capacity;
    table = Hashtbl.create (2 * capacity);
    head = None;
    tail = None;
    n_pinned = 0;
  }

let policy t = t.pol
let capacity t = t.cap
let length t = Hashtbl.length t.table
let pinned t = t.n_pinned

let unlink t node =
  (match node.prev with
  | Some p -> p.next <- node.next
  | None -> t.head <- node.next);
  (match node.next with
  | Some n -> n.prev <- node.prev
  | None -> t.tail <- node.prev);
  node.prev <- None;
  node.next <- None

let push_front t node =
  node.next <- t.head;
  node.prev <- None;
  (match t.head with Some h -> h.prev <- Some node | None -> t.tail <- Some node);
  t.head <- Some node

let touch t node =
  match t.pol with
  | Lru ->
      unlink t node;
      push_front t node
  | Second_chance -> node.referenced <- true

let find t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      touch t node;
      Some node.value

let peek t k =
  match Hashtbl.find_opt t.table k with None -> None | Some node -> Some node.value

let mem t k = Hashtbl.mem t.table k

let evict_node t node =
  unlink t node;
  Hashtbl.remove t.table node.key;
  Some (node.key, node.value)

(* LRU victim: the coldest unpinned entry.  Pinned entries keep their
   position — they become evictable the moment they are unpinned, in the
   order recency dictates. *)
let victim_lru t =
  let rec scan = function
    | None -> None
    | Some node -> if node.pins = 0 then evict_node t node else scan node.prev
  in
  scan t.tail

(* Clock victim: sweep from the cold end.  A referenced entry loses its
   bit and is recycled to the hot end (its second chance); a pinned entry
   is recycled with its bit intact (it cannot be evicted, and its
   recency shouldn't decay while someone holds it).  Two full sweeps
   visit every entry at least twice, so if no victim surfaced by then,
   everything is pinned. *)
let victim_clock t =
  let budget = ref (2 * Hashtbl.length t.table) in
  let rec sweep () =
    if !budget <= 0 then None
    else
      match t.tail with
      | None -> None
      | Some node ->
          decr budget;
          if node.pins > 0 then begin
            unlink t node;
            push_front t node;
            sweep ()
          end
          else if node.referenced then begin
            node.referenced <- false;
            unlink t node;
            push_front t node;
            sweep ()
          end
          else evict_node t node
  in
  sweep ()

let evict_one t =
  match t.pol with Lru -> victim_lru t | Second_chance -> victim_clock t

let add t k v =
  match Hashtbl.find_opt t.table k with
  | Some node ->
      node.value <- v;
      touch t node;
      None
  | None ->
      let node =
        { key = k; value = v; pins = 0; referenced = false; prev = None; next = None }
      in
      Hashtbl.replace t.table k node;
      push_front t node;
      if Hashtbl.length t.table > t.cap then begin
        (* The entry being inserted is never its own victim: bouncing it
           straight back out would thrash, and the buffer pool applies
           pin intents immediately after the add. *)
        node.pins <- node.pins + 1;
        let evicted = evict_one t in
        node.pins <- node.pins - 1;
        evicted
      end
      else None

let remove t k =
  match Hashtbl.find_opt t.table k with
  | None -> None
  | Some node ->
      if node.pins > 0 then t.n_pinned <- t.n_pinned - 1;
      unlink t node;
      Hashtbl.remove t.table k;
      Some node.value

let pin t k =
  match Hashtbl.find_opt t.table k with
  | None -> invalid_arg "Evict.pin: key not resident"
  | Some node ->
      if node.pins = 0 then t.n_pinned <- t.n_pinned + 1;
      node.pins <- node.pins + 1

let unpin t k =
  match Hashtbl.find_opt t.table k with
  | None -> invalid_arg "Evict.unpin: key not resident"
  | Some node ->
      if node.pins = 0 then invalid_arg "Evict.unpin: entry not pinned";
      node.pins <- node.pins - 1;
      if node.pins = 0 then t.n_pinned <- t.n_pinned - 1

let pin_count t k =
  match Hashtbl.find_opt t.table k with None -> 0 | Some node -> node.pins

let iter f t =
  let rec loop = function
    | None -> ()
    | Some node ->
        (* Capture [next] first: [f] may remove the current entry. *)
        let next = node.next in
        f node.key node.value;
        loop next
  in
  loop t.head

let fold f t init =
  let acc = ref init in
  iter (fun k v -> acc := f k v !acc) t;
  !acc

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None;
  t.n_pinned <- 0
