exception Unavailable of string

type backing = [ `Map | `Buffered ]

external msync_range : Zcodec.buf -> int -> int -> unit = "rta_arena_msync"
external willneed_range : Zcodec.buf -> int -> int -> unit = "rta_arena_willneed"

type mapped = {
  fd : Unix.file_descr;
  mutable map : Zcodec.buf;
}

type buffered = {
  file : Vfs.file;
  mutable data : Zcodec.buf;
}

type impl = Mapped of mapped | Buffered of buffered

type t = {
  impl : impl;
  path : string;
  block_size : int;
  mutable cap_blocks : int;
  dirty : (int, unit) Hashtbl.t;
  mutable n_remaps : int;
  mutable n_msync_ranges : int;
  mutable closed : bool;
}

let forced_off () =
  match Sys.getenv_opt "RTA_FORCE_NO_MMAP" with
  | Some ("" | "0") | None -> false
  | Some _ -> true

let ba_create n =
  Bigarray.Array1.create Bigarray.char Bigarray.c_layout n

let map_fd fd ~bytes : Zcodec.buf =
  Bigarray.array1_of_genarray
    (Unix.map_file fd Bigarray.char Bigarray.c_layout true [| bytes |])

let round_cap ~initial_blocks blocks =
  let rec go c = if c >= blocks then c else go (2 * c) in
  go (max 1 initial_blocks)

let create ?(initial_blocks = 64) ?(vfs = Vfs.os) ~backing ~block_size ~path ~mode () =
  if block_size < 16 then invalid_arg "Arena.create: block_size too small";
  if initial_blocks < 1 then invalid_arg "Arena.create: initial_blocks must be >= 1";
  let try_map () =
    if forced_off () then failwith "mmap disabled by RTA_FORCE_NO_MMAP";
    let flags =
      match mode with
      | `Create -> [ Unix.O_RDWR; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_CLOEXEC ]
      | `Reopen -> [ Unix.O_RDWR; Unix.O_CLOEXEC ]
    in
    let fd = Unix.openfile path flags 0o644 in
    match
      let size = (Unix.fstat fd).Unix.st_size in
      let cap_blocks =
        match mode with
        | `Create -> initial_blocks
        | `Reopen -> max initial_blocks (size / block_size)
      in
      let bytes = cap_blocks * block_size in
      if size < bytes then Unix.ftruncate fd bytes;
      let map = map_fd fd ~bytes in
      (* Prove the mapping is actually usable (some filesystems hand out
         a mapping that faults on first touch). *)
      ignore (Zcodec.get_u8 map 0);
      (cap_blocks, map)
    with
    | exception e ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        raise e
    | cap_blocks, map -> (Mapped { fd; map }, cap_blocks)
  in
  let buffered () =
    let file = vfs.Vfs.v_open (mode :> Vfs.open_mode) path in
    let size = file.Vfs.f_size () in
    let cap_blocks =
      match mode with
      | `Create -> initial_blocks
      | `Reopen -> max initial_blocks (size / block_size)
    in
    let bytes = cap_blocks * block_size in
    let data = ba_create bytes in
    Bigarray.Array1.fill data '\000';
    (* Pull the durable image into the RAM "mapping".  Clamp to the
       buffer: a crash can leave a torn trailing partial block, which
       [cap_blocks] rounds down past — drop it, as [Page_store.File]
       drops a torn trailing page. *)
    let limit = min size bytes in
    let buf = Bytes.create 65536 in
    let rec pull off =
      if off < limit then begin
        let n = file.Vfs.f_pread off buf 0 (min 65536 (limit - off)) in
        if n > 0 then begin
          Zcodec.blit_of_bytes buf 0 data off n;
          pull (off + n)
        end
      end
    in
    pull 0;
    if size < bytes then file.Vfs.f_truncate bytes;
    (Buffered { file; data }, cap_blocks)
  in
  let impl, cap_blocks =
    match backing with
    | `Buffered -> buffered ()
    | `Map -> (
        try try_map ()
        with e -> raise (Unavailable (Printexc.to_string e)))
    | `Auto -> ( try try_map () with _ -> buffered ())
  in
  {
    impl;
    path;
    block_size;
    cap_blocks;
    dirty = Hashtbl.create 256;
    n_remaps = 0;
    n_msync_ranges = 0;
    closed = false;
  }

let backing t = match t.impl with Mapped _ -> `Map | Buffered _ -> `Buffered
let block_size t = t.block_size
let capacity_blocks t = t.cap_blocks
let remaps t = t.n_remaps
let msync_ranges t = t.n_msync_ranges
let file_size_bytes t = t.cap_blocks * t.block_size

let buffer t =
  match t.impl with Mapped m -> m.map | Buffered b -> b.data

let check_open t op =
  if t.closed then
    Storage_error.raise_io ~detail:"arena is closed" ~op ~path:t.path
      (Storage_error.Errno "EBADF")

let ensure t ~blocks =
  check_open t Storage_error.Pwrite;
  if blocks > t.cap_blocks then begin
    let cap = round_cap ~initial_blocks:t.cap_blocks blocks in
    let bytes = cap * t.block_size in
    (match t.impl with
    | Mapped m ->
        Unix.ftruncate m.fd bytes;
        m.map <- map_fd m.fd ~bytes;
        t.n_remaps <- t.n_remaps + 1
    | Buffered b ->
        let data = ba_create bytes in
        Bigarray.Array1.fill data '\000';
        Bigarray.Array1.blit b.data
          (Bigarray.Array1.sub data 0 (Bigarray.Array1.dim b.data));
        b.data <- data;
        b.file.Vfs.f_truncate bytes);
    t.cap_blocks <- cap
  end

let mark_dirty t ~block =
  if block < 0 || block >= t.cap_blocks then
    invalid_arg "Arena.mark_dirty: block outside arena";
  Hashtbl.replace t.dirty block ()

let dirty_blocks t = Hashtbl.length t.dirty

(* Dirty blocks, coalesced into maximal [ (first, count) ] runs. *)
let dirty_ranges t =
  let blocks =
    Hashtbl.fold (fun b () acc -> b :: acc) t.dirty [] |> List.sort Int.compare
  in
  let rec go acc = function
    | [] -> List.rev acc
    | b :: rest -> (
        match acc with
        | (first, count) :: acc' when first + count = b ->
            go ((first, count + 1) :: acc') rest
        | _ -> go ((b, 1) :: acc) rest)
  in
  go [] blocks

let sync t =
  check_open t Storage_error.Fsync;
  let ranges = dirty_ranges t in
  (match t.impl with
  | Mapped m ->
      (try
         List.iter
           (fun (first, count) ->
             msync_range m.map (first * t.block_size) (count * t.block_size))
           ranges;
         Unix.fsync m.fd
       with
      | Failure msg ->
          Storage_error.raise_io ~detail:msg ~op:Storage_error.Fsync ~path:t.path
            (Storage_error.Errno "MSYNC")
      | Unix.Unix_error (errno, _, _) ->
          raise
            (Storage_error.Io
               (Storage_error.of_unix ~op:Storage_error.Fsync ~path:t.path errno)))
  | Buffered b ->
      let scratch = Bytes.create t.block_size in
      List.iter
        (fun (first, count) ->
          for blk = first to first + count - 1 do
            Zcodec.blit_to_bytes b.data (blk * t.block_size) scratch 0 t.block_size;
            b.file.Vfs.f_pwrite (blk * t.block_size) scratch 0 t.block_size
          done)
        ranges;
      b.file.Vfs.f_sync ());
  t.n_msync_ranges <- t.n_msync_ranges + List.length ranges;
  Hashtbl.reset t.dirty

let willneed t ~block ~count =
  if count > 0 && block >= 0 && block < t.cap_blocks then
    let count = min count (t.cap_blocks - block) in
    match t.impl with
    | Mapped m -> willneed_range m.map (block * t.block_size) (count * t.block_size)
    | Buffered _ -> ()

let close t =
  if not t.closed then begin
    t.closed <- true;
    match t.impl with
    | Mapped m -> ( try Unix.close m.fd with Unix.Unix_error _ -> ())
    | Buffered b -> b.file.Vfs.f_close ()
  end
