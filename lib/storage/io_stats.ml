(* The counters themselves live in [lib/telemetry] so the telemetry layer
   (tracer span deltas, metrics absorption) can sit below the storage
   stack; this re-export keeps every [Storage.Io_stats] reference — and
   its type equalities — working unchanged. *)
include Telemetry.Io_stats
