type snapshot = { reads : int; writes : int; allocs : int; frees : int; syncs : int }

type t = {
  mutable n_reads : int;
  mutable n_writes : int;
  mutable n_allocs : int;
  mutable n_frees : int;
  mutable n_syncs : int;
}

let create () = { n_reads = 0; n_writes = 0; n_allocs = 0; n_frees = 0; n_syncs = 0 }
let reads t = t.n_reads
let writes t = t.n_writes
let allocs t = t.n_allocs
let frees t = t.n_frees
let syncs t = t.n_syncs
let total_io t = t.n_reads + t.n_writes
let record_read t = t.n_reads <- t.n_reads + 1
let record_write t = t.n_writes <- t.n_writes + 1
let record_alloc t = t.n_allocs <- t.n_allocs + 1
let record_free t = t.n_frees <- t.n_frees + 1
let record_sync t = t.n_syncs <- t.n_syncs + 1

let reset t =
  t.n_reads <- 0;
  t.n_writes <- 0;
  t.n_allocs <- 0;
  t.n_frees <- 0;
  t.n_syncs <- 0

let snapshot t : snapshot =
  {
    reads = t.n_reads;
    writes = t.n_writes;
    allocs = t.n_allocs;
    frees = t.n_frees;
    syncs = t.n_syncs;
  }

let diff (a : snapshot) (b : snapshot) : snapshot =
  {
    reads = a.reads - b.reads;
    writes = a.writes - b.writes;
    allocs = a.allocs - b.allocs;
    frees = a.frees - b.frees;
    syncs = a.syncs - b.syncs;
  }

let pp ppf t =
  Format.fprintf ppf "reads=%d writes=%d allocs=%d frees=%d syncs=%d" t.n_reads
    t.n_writes t.n_allocs t.n_frees t.n_syncs

let pp_snapshot ppf (s : snapshot) =
  Format.fprintf ppf "reads=%d writes=%d allocs=%d frees=%d syncs=%d" s.reads s.writes
    s.allocs s.frees s.syncs
