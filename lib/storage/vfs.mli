(** The virtual file system all disk writers go through.

    Every durable artifact in this code base — the WAL, {!Page_store.File}
    page files and their free-list sidecars, the MVSBT and warehouse meta
    sidecars, checkpoint snapshots, and the checkpoint pointer — performs
    its byte-level I/O through a {!t}.  Three implementations share the
    interface:

    - {!os} is the real thing (Unix file descriptors, [fsync], atomic
      [rename]);
    - {!Memory} keeps files in memory {e and journals every state-changing
      operation}, which is what the crash-state explorer
      ([lib/faultsim]) replays to enumerate legal post-crash disk images;
    - {!Fault} wraps any {!file} with a byte budget after which the write
      in flight is torn, dropped, or duplicated and the "process" dies.

    The disk model the journal encodes (and recovery is tested against):

    - [pwrite]/[append]/[truncate] on a file are {e volatile} until the
      next [fsync] of that file; a crash may lose, tear, or reorder them;
    - [fsync] of a file makes all its prior data operations durable and —
      as on ext4 — also persists the file's directory entry;
    - [rename] is atomic (a crash sees the old name or the new name,
      never a mix) but needs an [fsync] of the parent directory to be
      guaranteed durable;
    - [remove] likewise becomes durable at the next directory [fsync]. *)

exception Crashed
(** Raised by a {!Fault} file once its fault triggers; every later
    operation on the crashed file raises it too (the process is "dead"). *)

type file = {
  f_pread : int -> bytes -> int -> int -> int;
      (** [f_pread off buf pos len] reads up to [len] bytes at absolute
          offset [off]; returns the number read (0 at EOF). *)
  f_pwrite : int -> bytes -> int -> int -> unit;
      (** [f_pwrite off buf pos len] writes at absolute offset [off],
          zero-filling any gap past EOF. *)
  f_append : bytes -> int -> int -> unit;
      (** [f_append buf pos len] appends at end-of-file.  May raise
          {!Crashed} after writing a prefix (torn write) under {!Fault}. *)
  f_size : unit -> int;
  f_sync : unit -> unit;
  f_truncate : int -> unit;
  f_close : unit -> unit;
}

type open_mode =
  [ `Create  (** Create or truncate. *)
  | `Reopen  (** Open an existing file; fails if absent. *)
  | `Log
    (** Create if absent, position appends at EOF ([O_APPEND] on the real
        filesystem, where an advisory lock also rejects a second process
        opening the same log). *) ]

type t = {
  v_open : open_mode -> string -> file;
  v_rename : string -> string -> unit;  (** Atomic; see the disk model. *)
  v_remove : string -> unit;
  v_exists : string -> bool;
  v_readdir : string -> string array;
  v_sync_dir : string -> unit;
}

val os : t
(** The real filesystem.  Syscalls interrupted by [EINTR] are retried in
    place and short [read]/[write] transfers are looped to completion;
    any other Unix failure surfaces as a typed [Storage_error.Io] — with
    the exception of "no such file" on open/rename/remove, which stays a
    [Sys_error] because absence is a condition recovery paths branch on,
    not an I/O fault. *)

val read_file : t -> string -> bytes
(** Whole-file read. @raise Failure on a short read, [Sys_error]/[Failure]
    if absent. *)

val write_file_atomic : t -> path:string -> bytes -> len:int -> unit
(** Write [len] bytes to [path ^ ".tmp"], [fsync], then atomically rename
    over [path] — the shared commit idiom for sidecars and pointers.  The
    caller adds {!t.v_sync_dir} when the rename itself must be durable. *)

val sync_path : t -> string -> unit
(** Open [path] and [fsync] it. *)

(** Byte-budget fault injection over any {!file}. *)
module Fault : sig
  type mode =
    | Torn  (** The crossing write lands as a prefix (default). *)
    | Dropped  (** The crossing write is lost entirely. *)
    | Duplicated  (** The crossing write lands twice (a retried write). *)

  type handle

  val wrap : ?mode:mode -> fail_after:int -> file -> handle * file
  (** [wrap ~fail_after f] crashes once [fail_after] more bytes have been
      written through the wrapper ([f_append] and [f_pwrite] both count).
      Reads are unaffected until the crash; afterwards every operation
      raises {!Crashed}. *)

  val crashed : handle -> bool

  val written : handle -> int
  (** Bytes that reached the underlying file before (or at) the crash. *)
end

(** In-memory files plus an operation journal, the substrate of the
    crash-state explorer. *)
module Memory : sig
  type op =
    | Create of string
    | Pwrite of { path : string; off : int; data : string }
    | Truncate of string * int
    | Sync of string
    | Rename of string * string
    | Remove of string
    | Sync_dir of string

  val pp_op : Format.formatter -> op -> unit

  type fs

  val create : unit -> fs
  val vfs : fs -> t

  val ops : fs -> op list
  (** Every state-changing operation since {!create}, in program order.
      Reads and closes are not journalled (they change no disk state). *)

  val op_count : fs -> int

  val contents : fs -> (string * string) list
  (** Current (fully-applied) file contents, sorted by path. *)

  val norm : string -> string
  (** The path normalisation the journal uses ("./x" aliases "x"). *)
end

(** Errno-class fault injection: fail the k-th syscall of a run.

    Where {!Fault} models a {e crash} (the process dies mid-write), this
    wrapper models the kernel {e returning an error} from a single
    syscall while the process keeps running — the substrate of the
    [Faultsim.Errsweep] driver, which sweeps k over a whole trace. *)
module Inject : sig
  type err_class =
    | Enospc  (** Allocation failure — writes, creations, renames. *)
    | Eio  (** Device error — any syscall. *)
    | Eintr  (** Interruption — any syscall. *)
    | Short  (** Short transfer — reads, writes, appends. *)

  val pp_class : Format.formatter -> err_class -> unit
  val class_name : err_class -> string
  val class_of_string : string -> err_class option

  val all_classes : err_class list
  (** In declaration order: [Enospc; Eio; Eintr; Short]. *)

  type handle

  val wrap :
    ?stats:Io_stats.t -> persistent:bool -> fail_at:int -> cls:err_class -> t -> handle * t
  (** [wrap ~persistent ~fail_at ~cls vfs] counts every syscall issued
      through the wrapper ([v_open]/[v_rename]/[v_remove]/[v_sync_dir]
      and all file data operations except [f_size]/[f_close]) and raises
      a typed [Storage_error.Io] from the first class-applicable syscall
      whose index reaches [fail_at] — from every one thereafter when
      [persistent] (how a full disk behaves, vs. a one-shot glitch).  A
      firing syscall has {e no side effect}, so retrying it re-issues the
      operation exactly.  Each fired fault bumps
      [Io_stats.errors_injected] on [stats]. *)

  val syscalls : handle -> int
  (** Counted syscalls so far (including any that fired). *)

  val injected : handle -> int
  val triggered : handle -> bool

  val arm : handle -> fail_at:int -> unit
  (** Re-aim the fault at a later syscall index and re-arm a one-shot
      wrapper — lets a test run a clean prefix, read {!syscalls}, and
      target a precise phase of the trace. *)
end

val with_retry : ?stats:Io_stats.t -> ?policy:Retry.policy -> t -> t
(** Wrap every operation of a vfs in {!Retry.run}: transient
    [Storage_error.Io] failures ([EINTR], [EIO], short transfers) are
    retried with bounded exponential backoff, bumping
    [Io_stats.retries]; permanent errors and {!Crashed} propagate
    untouched.  [f_close] is never retried. *)

val with_telemetry : Telemetry.Tracer.t -> t -> t
(** Emit a tracing span per syscall ([vfs.pread], [vfs.pwrite],
    [vfs.append], [vfs.fsync], [vfs.truncate], [vfs.open], [vfs.rename],
    [vfs.remove], [vfs.sync_dir]) carrying the path and, for data
    operations, the byte length.  Returns [vfs] itself when the tracer is
    disabled, so an uninstrumented stack pays nothing. *)
