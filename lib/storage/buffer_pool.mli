(** Write-back LRU buffer pool over a page store.

    The paper's experiments use "LRU buffering and the default buffer size
    is 64 pages" (section 5) and sweep the buffer size in figure 4c.  The
    pool caches page payloads; a read miss costs one physical read, and
    evicting or flushing a dirty page costs one physical write — both
    charged to the underlying store's {!Io_stats}.  Cache hits are free,
    exactly like a real buffer manager. *)

module Make (Store : Page_store.S) : sig
  type t

  val create : ?capacity:int -> Store.t -> t
  (** [capacity] defaults to 64 pages, the paper's default. *)

  val store : t -> Store.t
  val capacity : t -> int

  val stats : t -> Io_stats.t
  (** Physical I/O counters of the underlying store. *)

  val hits : t -> int
  val misses : t -> int

  val touches : t -> int
  (** Logical page accesses ({!read} + {!write}), independent of whether
      they hit the cache — the per-operation quantity the paper's
      [O(log_b n)] bounds speak about, and what the telemetry bound
      checker profiles. *)

  val alloc : t -> Page_id.t
  (** Allocate a page id from the store.  The caller must {!write} a
      payload before reading it back. *)

  val read : t -> Page_id.t -> Store.payload
  (** Cached read.  On a miss the payload is fetched from the store (one
      physical read) and cached, possibly evicting the LRU page.
      @raise Not_found if the page does not exist. *)

  val write : t -> Page_id.t -> Store.payload -> unit
  (** Install a payload in the cache and mark it dirty.  No physical write
      happens until eviction or {!flush}. *)

  val mark_dirty : t -> Page_id.t -> unit
  (** Mark an already-cached page dirty after mutating its payload in
      place.  No-op if the page is not cached (the caller must then use
      {!write}). *)

  val mem : t -> Page_id.t -> bool
  (** Whether the page exists, in the cache {e or} the store.  A dirty
      page that has never been evicted lives only in the cache, so
      existence checks must go through the pool, not the raw store. *)

  val free : t -> Page_id.t -> unit
  (** Drop the page from the cache (without write-back) and free it in the
      store. *)

  val flush : t -> unit
  (** Write back every dirty page; the cache keeps its contents clean. *)

  val drop_cache : t -> unit
  (** Flush, then empty the cache — simulates a cold buffer pool before a
      query batch. *)
end
