(** Write-back buffer pool with pinning over a page store.

    The paper's experiments use "LRU buffering and the default buffer size
    is 64 pages" (section 5) and sweep the buffer size in figure 4c.  The
    pool caches page payloads; a read miss costs one physical read, and
    evicting or flushing a dirty page costs one physical write — both
    charged to the underlying store's {!Io_stats}.  Cache hits are free,
    exactly like a real buffer manager.

    Replacement is pluggable ({!Evict.policy}): exact LRU — the paper's
    setting and the default — or second-chance (clock), the cheaper
    approximation a mapped store pairs with.  Pages can be {!pin}ned
    against eviction while a caller holds a reference into them
    (mandatory once records are decoded straight out of mapped blocks);
    a pin is an {e intent} that survives {!drop_cache} and re-applies
    itself when the page faults back in.  {!readahead} batches the
    prefetch hint for an anticipated descent path. *)

module Make (Store : Page_store.S) : sig
  type t

  val create : ?capacity:int -> ?policy:Evict.policy -> Store.t -> t
  (** [capacity] defaults to 64 pages, the paper's default; [policy] to
      {!Evict.Lru}. *)

  val store : t -> Store.t
  val capacity : t -> int
  val policy : t -> Evict.policy

  val stats : t -> Io_stats.t
  (** Physical I/O counters of the underlying store. *)

  val hits : t -> int
  val misses : t -> int

  val touches : t -> int
  (** Logical page accesses ({!read} + {!write}), independent of whether
      they hit the cache — the per-operation quantity the paper's
      [O(log_b n)] bounds speak about, and what the telemetry bound
      checker profiles. *)

  val readaheads : t -> int
  (** Pages hinted via {!readahead} over the pool's lifetime. *)

  val pinned : t -> int
  (** Resident pages currently pinned. *)

  val alloc : t -> Page_id.t
  (** Allocate a page id from the store.  The caller must {!write} a
      payload before reading it back. *)

  val read : t -> Page_id.t -> Store.payload
  (** Cached read.  On a miss the payload is fetched from the store (one
      physical read) and cached, possibly evicting an unpinned page.
      @raise Not_found if the page does not exist. *)

  val write : t -> Page_id.t -> Store.payload -> unit
  (** Install a payload in the cache and mark it dirty.  No physical write
      happens until eviction or {!flush}. *)

  val mark_dirty : t -> Page_id.t -> unit
  (** Mark an already-cached page dirty after mutating its payload in
      place.  No-op if the page is not cached (the caller must then use
      {!write}). *)

  val mem : t -> Page_id.t -> bool
  (** Whether the page exists, in the cache {e or} the store.  A dirty
      page that has never been evicted lives only in the cache, so
      existence checks must go through the pool, not the raw store. *)

  val resident : t -> Page_id.t -> bool
  (** Whether the page is currently cached — a {!read} right now would
      hit.  Lets callers gate advisory work (readahead) to faults. *)

  val pin : t -> Page_id.t -> unit
  (** Record the intent that this page must stay resident, faulting it in
      (one charged read) if it is not.  Pins nest; each {!pin} needs a
      matching {!unpin}.  When every resident page is pinned the cache
      overcommits past capacity rather than evicting a held page. *)

  val unpin : t -> Page_id.t -> unit
  (** @raise Invalid_argument on an unbalanced unpin. *)

  val pin_count : t -> Page_id.t -> int
  (** Outstanding pin intents for a page (0 if none). *)

  val readahead : t -> Page_id.t list -> unit
  (** Batched prefetch hint for the not-yet-resident pages of an
      anticipated descent path.  Advisory: charges no reads, only the
      [readaheads] counter; actual faults are still charged where the
      descent reads the pages. *)

  val free : t -> Page_id.t -> unit
  (** Drop the page from the cache (without write-back, clearing any pin
      intents) and free it in the store. *)

  val flush : t -> unit
  (** Write back every dirty page; the cache keeps its contents clean. *)

  val drop_cache : t -> unit
  (** Flush, then empty the cache — simulates a cold buffer pool before a
      query batch.  Pin intents survive and re-apply on fault-in. *)
end
