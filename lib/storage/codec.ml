exception Overflow of string

module Writer = struct
  type t = { buf : bytes; mutable pos : int }

  let create size = { buf = Bytes.make size '\000'; pos = 0 }
  let pos t = t.pos

  let ensure t n =
    if t.pos + n > Bytes.length t.buf then
      raise (Overflow (Printf.sprintf "write of %d bytes at %d exceeds page size %d"
                         n t.pos (Bytes.length t.buf)))

  let u8 t v =
    ensure t 1;
    Bytes.set_uint8 t.buf t.pos (v land 0xff);
    t.pos <- t.pos + 1

  let i32 t v =
    if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
      raise (Overflow (Printf.sprintf "value %d does not fit in 32 bits" v));
    ensure t 4;
    Bytes.set_int32_le t.buf t.pos (Int32.of_int v);
    t.pos <- t.pos + 4

  let i64 t v =
    ensure t 8;
    Bytes.set_int64_le t.buf t.pos (Int64.of_int v);
    t.pos <- t.pos + 8

  let bool t b = u8 t (if b then 1 else 0)
  let contents t = t.buf
end

(* CRC-32 (IEEE 802.3, polynomial 0xEDB88320), byte-at-a-time with a
   precomputed table.  Pure OCaml; values stay in the native int (the low
   32 bits are the checksum). *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32_update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Codec.crc32_update: range outside buffer";
  let table = Lazy.force crc_table in
  let c = ref (crc lxor 0xFFFFFFFF) in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor Bytes.get_uint8 buf i) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let crc32 buf ~pos ~len = crc32_update 0 buf ~pos ~len
let crc32_string s = crc32 (Bytes.unsafe_of_string s) ~pos:0 ~len:(String.length s)

module Reader = struct
  type t = { buf : bytes; mutable pos : int }

  let create buf = { buf; pos = 0 }
  let pos t = t.pos

  let ensure t n =
    if t.pos + n > Bytes.length t.buf then
      raise (Overflow (Printf.sprintf "read of %d bytes at %d exceeds block size %d"
                         n t.pos (Bytes.length t.buf)))

  let u8 t =
    ensure t 1;
    let v = Bytes.get_uint8 t.buf t.pos in
    t.pos <- t.pos + 1;
    v

  let i32 t =
    ensure t 4;
    let v = Int32.to_int (Bytes.get_int32_le t.buf t.pos) in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    ensure t 8;
    let v = Int64.to_int (Bytes.get_int64_le t.buf t.pos) in
    t.pos <- t.pos + 8;
    v

  let bool t = u8 t <> 0
end
