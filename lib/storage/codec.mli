(** Little-endian binary encoding of page payloads.

    The file-backed page store serialises every page into a fixed-size
    block.  [Writer] appends primitive values into a sized buffer and
    [Reader] consumes them back; both raise on overflow so a page whose
    payload exceeds the configured page size fails loudly instead of
    corrupting its neighbours. *)

exception Overflow of string
(** Raised when an encoder exceeds the page size or a decoder reads past
    the end of the block. *)

module Writer : sig
  type t

  val create : int -> t
  (** [create size] is a writer over a zero-filled buffer of [size] bytes. *)

  val pos : t -> int

  val u8 : t -> int -> unit
  (** Writes the low 8 bits. *)

  val i32 : t -> int -> unit
  (** Writes a signed 32-bit value.
      @raise Overflow if the value does not fit in 32 bits. *)

  val i64 : t -> int -> unit
  (** Writes a full OCaml native int as 64 bits. *)

  val bool : t -> bool -> unit

  val contents : t -> bytes
  (** The full fixed-size buffer (trailing bytes are zero). *)
end

(** {1 CRC-32}

    The IEEE 802.3 checksum (polynomial [0xEDB88320], the zlib/PNG/
    Ethernet variant), computed byte-at-a-time over a precomputed table.
    Frames WAL records and page-file headers so torn or corrupted bytes
    are detected on recovery instead of silently decoded. *)

val crc32 : bytes -> pos:int -> len:int -> int
(** Checksum of [len] bytes starting at [pos]; the result fits 32 bits.
    @raise Invalid_argument if the range lies outside the buffer. *)

val crc32_update : int -> bytes -> pos:int -> len:int -> int
(** [crc32_update crc buf ~pos ~len] extends a running checksum, so a
    record can be checksummed in pieces: [crc32 b ~pos ~len] equals
    [crc32_update (crc32 b0) b1] over the concatenation. *)

val crc32_string : string -> int

module Reader : sig
  type t

  val create : bytes -> t
  val pos : t -> int
  val u8 : t -> int
  val i32 : t -> int
  val i64 : t -> int
  val bool : t -> bool
end
