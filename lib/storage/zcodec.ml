type buf = (char, Bigarray.int8_unsigned_elt, Bigarray.c_layout) Bigarray.Array1.t

let get_u8 (b : buf) i = Char.code (Bigarray.Array1.get b i)
let set_u8 (b : buf) i v = Bigarray.Array1.set b i (Char.chr (v land 0xff))

(* Little-endian multi-byte accessors, composed a byte at a time: the
   stdlib offers no [Bytes]-style getters over char bigarrays, and going
   through an intermediate [bytes] is exactly what this module exists to
   avoid.  Formats match {!Codec} bit for bit. *)

let get_i32 (b : buf) i =
  let v =
    get_u8 b i
    lor (get_u8 b (i + 1) lsl 8)
    lor (get_u8 b (i + 2) lsl 16)
    lor (get_u8 b (i + 3) lsl 24)
  in
  (* Sign-extend from 32 bits, as [Codec.Reader.i32] does via Int32. *)
  (v lsl 31) asr 31

let set_i32 (b : buf) i v =
  set_u8 b i v;
  set_u8 b (i + 1) (v lsr 8);
  set_u8 b (i + 2) (v lsr 16);
  set_u8 b (i + 3) (v lsr 24)

let get_i64 (b : buf) i =
  let lo =
    get_u8 b i
    lor (get_u8 b (i + 1) lsl 8)
    lor (get_u8 b (i + 2) lsl 16)
    lor (get_u8 b (i + 3) lsl 24)
  in
  let hi =
    get_u8 b (i + 4)
    lor (get_u8 b (i + 5) lsl 8)
    lor (get_u8 b (i + 6) lsl 16)
    lor (get_u8 b (i + 7) lsl 24)
  in
  (* As [Codec.Reader.i64]: the value is an OCaml int (63-bit); the top
     byte's MSB is lost exactly as Int64.to_int would lose it. *)
  lo lor (hi lsl 32)

let set_i64 (b : buf) i v =
  set_i32 b i (v land 0xFFFFFFFF);
  set_i32 b (i + 4) ((v asr 32) land 0xFFFFFFFF)

(* CRC-32 (IEEE 802.3), same table as {!Codec} — recomputed here rather
   than exported from Codec so neither module grows a dependency on the
   other's internals; the known-answer tests pin them equal. *)
let crc_table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 1 to 8 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let crc32 (b : buf) ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bigarray.Array1.dim b then
    invalid_arg "Zcodec.crc32: range outside buffer";
  let table = Lazy.force crc_table in
  let c = ref 0xFFFFFFFF in
  for i = pos to pos + len - 1 do
    c := table.((!c lxor get_u8 b i) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xFFFFFFFF land 0xFFFFFFFF

let blit_to_bytes (src : buf) src_off dst dst_off len =
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > Bigarray.Array1.dim src
     || dst_off + len > Bytes.length dst
  then invalid_arg "Zcodec.blit_to_bytes: range outside buffer";
  for i = 0 to len - 1 do
    Bytes.unsafe_set dst (dst_off + i) (Bigarray.Array1.unsafe_get src (src_off + i))
  done

let blit_of_bytes src src_off (dst : buf) dst_off len =
  if len < 0 || src_off < 0 || dst_off < 0
     || src_off + len > Bytes.length src
     || dst_off + len > Bigarray.Array1.dim dst
  then invalid_arg "Zcodec.blit_of_bytes: range outside buffer";
  for i = 0 to len - 1 do
    Bigarray.Array1.unsafe_set dst (dst_off + i) (Bytes.unsafe_get src (src_off + i))
  done

module Writer = struct
  type t = { buf : buf; off : int; len : int; mutable pos : int }

  let create buf ~off ~len =
    if off < 0 || len < 0 || off + len > Bigarray.Array1.dim buf then
      invalid_arg "Zcodec.Writer.create: slice outside buffer";
    { buf; off; len; pos = 0 }

  let pos t = t.pos

  let ensure t n =
    if t.pos + n > t.len then
      raise
        (Codec.Overflow
           (Printf.sprintf "write of %d bytes at %d exceeds mapped slice of %d" n t.pos
              t.len))

  let u8 t v =
    ensure t 1;
    set_u8 t.buf (t.off + t.pos) v;
    t.pos <- t.pos + 1

  let i32 t v =
    if v < Int32.to_int Int32.min_int || v > Int32.to_int Int32.max_int then
      raise (Codec.Overflow (Printf.sprintf "value %d does not fit in 32 bits" v));
    ensure t 4;
    set_i32 t.buf (t.off + t.pos) v;
    t.pos <- t.pos + 4

  let i64 t v =
    ensure t 8;
    set_i64 t.buf (t.off + t.pos) v;
    t.pos <- t.pos + 8

  let bool t b = u8 t (if b then 1 else 0)
end

module Reader = struct
  type t = { buf : buf; off : int; len : int; mutable pos : int }

  let create buf ~off ~len =
    if off < 0 || len < 0 || off + len > Bigarray.Array1.dim buf then
      invalid_arg "Zcodec.Reader.create: slice outside buffer";
    { buf; off; len; pos = 0 }

  let pos t = t.pos

  let ensure t n =
    if t.pos + n > t.len then
      raise
        (Codec.Overflow
           (Printf.sprintf "read of %d bytes at %d exceeds mapped slice of %d" n t.pos
              t.len))

  let u8 t =
    ensure t 1;
    let v = get_u8 t.buf (t.off + t.pos) in
    t.pos <- t.pos + 1;
    v

  let i32 t =
    ensure t 4;
    let v = get_i32 t.buf (t.off + t.pos) in
    t.pos <- t.pos + 4;
    v

  let i64 t =
    ensure t 8;
    let v = get_i64 t.buf (t.off + t.pos) in
    t.pos <- t.pos + 8;
    v

  let bool t = u8 t <> 0
end
