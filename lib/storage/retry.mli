(** Bounded exponential backoff for transient storage errors.

    A {!policy} caps the number of attempts and shapes the delay between
    them; {!run} applies it to a thunk, retrying only errors whose
    [Storage_error.transient] flag is set ([EINTR], [EIO], short
    transfers).  Permanent errors ([ENOSPC], …) and non-storage
    exceptions — including [Vfs.Crashed] — propagate immediately.

    The [sleep] field makes the policy testable and deterministic:
    {!no_delay} retries without waiting, which is what the fault-sweep
    driver and the unit tests use. *)

type policy = {
  max_attempts : int;  (** Total tries, including the first. At least 1. *)
  base_delay_s : float;  (** Delay before the first retry, in seconds. *)
  multiplier : float;  (** Backoff factor between consecutive retries. *)
  max_delay_s : float;  (** Ceiling on any single delay. *)
  sleep : float -> unit;  (** How to wait; [Unix.sleepf] in production. *)
}

val default : policy
(** 4 attempts, 1 ms → 4 ms → 16 ms (capped at 100 ms), [Unix.sleepf]. *)

val no_delay : policy
(** Same attempt budget as {!default} but never sleeps — for tests and
    deterministic sweeps. *)

val pp_policy : Format.formatter -> policy -> unit

val run : ?stats:Io_stats.t -> policy:policy -> (unit -> 'a) -> 'a
(** [run ~policy f] calls [f], retrying up to [policy.max_attempts] times
    while it raises a transient [Storage_error.Io].  Each absorbed error
    bumps [Io_stats.retries] on [stats].  The last error is re-raised
    when the budget runs out. *)
