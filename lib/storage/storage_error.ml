type op =
  | Open
  | Pread
  | Pwrite
  | Append
  | Fsync
  | Truncate
  | Close
  | Rename
  | Remove
  | Readdir
  | Fsync_dir

let op_name = function
  | Open -> "open"
  | Pread -> "pread"
  | Pwrite -> "pwrite"
  | Append -> "append"
  | Fsync -> "fsync"
  | Truncate -> "truncate"
  | Close -> "close"
  | Rename -> "rename"
  | Remove -> "remove"
  | Readdir -> "readdir"
  | Fsync_dir -> "fsync-dir"

let pp_op fmt op = Format.pp_print_string fmt (op_name op)

type errno =
  | Enospc
  | Eio
  | Eintr
  | Short_read of { expected : int; got : int }
  | Short_write of { expected : int; got : int }
  | Read_only_store
  | Wal_poisoned
  | Errno of string

let pp_errno fmt = function
  | Enospc -> Format.pp_print_string fmt "ENOSPC"
  | Eio -> Format.pp_print_string fmt "EIO"
  | Eintr -> Format.pp_print_string fmt "EINTR"
  | Short_read { expected; got } ->
      Format.fprintf fmt "short read (%d of %d bytes)" got expected
  | Short_write { expected; got } ->
      Format.fprintf fmt "short write (%d of %d bytes)" got expected
  | Read_only_store -> Format.pp_print_string fmt "store is read-only"
  | Wal_poisoned -> Format.pp_print_string fmt "log poisoned by failed repair"
  | Errno e -> Format.pp_print_string fmt e

let transient_of_errno = function
  | Eintr | Eio | Short_read _ | Short_write _ -> true
  | Enospc | Read_only_store | Wal_poisoned | Errno _ -> false

type t = {
  op : op;
  path : string;
  errno : errno;
  transient : bool;
  detail : string option;
}

exception Io of t

let v ?detail ?transient ~op ~path errno =
  let transient =
    match transient with Some b -> b | None -> transient_of_errno errno
  in
  { op; path; errno; transient; detail }

let raise_io ?detail ?transient ~op ~path errno =
  raise (Io (v ?detail ?transient ~op ~path errno))

let of_unix ~op ~path (e : Unix.error) =
  match e with
  | Unix.ENOSPC -> v ~op ~path Enospc
  | Unix.EIO -> v ~op ~path Eio
  | Unix.EINTR -> v ~op ~path Eintr
  | e ->
      let name =
        match e with
        | Unix.EUNKNOWNERR n -> Printf.sprintf "errno(%d)" n
        | e -> Unix.error_message e
      in
      v ~op ~path (Errno name)

let protect f = try Ok (f ()) with Io e -> Error e
let ok_exn = function Ok v -> v | Error e -> raise (Io e)

let pp fmt t =
  Format.fprintf fmt "%a during %a on %s (%s)%t" pp_errno t.errno pp_op t.op
    t.path
    (if t.transient then "transient" else "permanent")
    (fun fmt ->
      match t.detail with
      | None -> ()
      | Some d -> Format.fprintf fmt ": %s" d)

let to_string t = Format.asprintf "%a" pp t

let () =
  Printexc.register_printer (function
    | Io t -> Some (Printf.sprintf "Storage_error.Io(%s)" (to_string t))
    | _ -> None)
