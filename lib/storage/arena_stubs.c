/* msync/madvise bindings for the mmap page arena.

   The OCaml stdlib exposes Unix.map_file but no way to force a mapped
   range to the platter or to hint the kernel about an upcoming access
   pattern; both matter here (durability barriers and descent-path
   readahead).  Errors surface as Failure with the errno string — the
   OCaml side converts them into its typed storage errors. */

#include <caml/mlvalues.h>
#include <caml/bigarray.h>
#include <caml/fail.h>
#include <caml/threads.h>

#include <errno.h>
#include <stdint.h>
#include <string.h>
#include <unistd.h>

#ifndef _WIN32
#include <sys/mman.h>
#endif

/* msync needs a page-aligned start address; widen the range down to the
   enclosing page boundary (flushing a little extra is always sound). */
static char *align_down(char *p, long pagesz, long *len)
{
  uintptr_t delta = (uintptr_t)p % (uintptr_t)pagesz;
  *len += (long)delta;
  return p - delta;
}

CAMLprim value rta_arena_msync(value vba, value voff, value vlen)
{
#ifdef _WIN32
  caml_failwith("msync: unsupported platform");
#else
  char *base = (char *)Caml_ba_data_val(vba);
  long off = Long_val(voff);
  long len = Long_val(vlen);
  long pagesz = sysconf(_SC_PAGESIZE);
  char *p = align_down(base + off, pagesz, &len);
  int rc, err;
  caml_release_runtime_system();
  rc = msync(p, (size_t)len, MS_SYNC);
  err = errno;
  caml_acquire_runtime_system();
  if (rc != 0)
    caml_failwith(strerror(err));
#endif
  return Val_unit;
}

CAMLprim value rta_arena_willneed(value vba, value voff, value vlen)
{
#if !defined(_WIN32) && defined(POSIX_MADV_WILLNEED)
  char *base = (char *)Caml_ba_data_val(vba);
  long off = Long_val(voff);
  long len = Long_val(vlen);
  long pagesz = sysconf(_SC_PAGESIZE);
  char *p = align_down(base + off, pagesz, &len);
  /* Advisory: a refusal (e.g. on weird filesystems) costs only the
     prefetch, so the return code is deliberately ignored. */
  (void)posix_madvise(p, (size_t)len, POSIX_MADV_WILLNEED);
#else
  (void)vba;
  (void)voff;
  (void)vlen;
#endif
  return Val_unit;
}
