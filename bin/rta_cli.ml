(* Command-line driver for the range-temporal aggregation system.

   Subcommands:
     generate   — emit a workload as a text event stream
     build      — replay a workload into the 2-MVSBT index and report stats
                  (with --wal, through the durable write-ahead-logged engine)
     query      — build, then answer ad-hoc or random RTA queries
     compare    — build both 2-MVSBT and MVBT, run a query batch on each
     checkpoint — recover a durable warehouse, snapshot it, truncate its log
     recover    — recover a durable warehouse and report what was replayed
     scrub      — verify per-page checksums, repair from a reference warehouse
     crash-matrix — enumerate post-crash disk images and verify recovery on each
     errsweep   — sweep single I/O-error injections over a trace and verify the
                  typed-error / read-only degradation contract *)

let setup_logs verbosity =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (match verbosity with 0 -> Some Logs.Warning | 1 -> Some Logs.Info | _ -> Some Logs.Debug)

(* --- Shared argument bundles ------------------------------------------------ *)

open Cmdliner

let verbosity =
  let doc = "Verbosity (-v info, -vv debug)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)
  |> Term.map List.length

let spec_term =
  let records =
    let doc = "Number of tuple versions to generate." in
    Arg.(value & opt int 20_000 & info [ "n"; "records" ] ~doc)
  in
  let keys =
    let doc = "Number of unique keys (about records/100 by default)." in
    Arg.(value & opt (some int) None & info [ "keys" ] ~doc)
  in
  let max_key =
    let doc = "Key space upper bound (exclusive)." in
    Arg.(value & opt int 1_000_000_000 & info [ "max-key" ] ~doc)
  in
  let max_time =
    let doc = "Time space upper bound (exclusive)." in
    Arg.(value & opt int 100_000_000 & info [ "max-time" ] ~doc)
  in
  let normal =
    let doc = "Draw keys from a normal distribution instead of uniform." in
    Arg.(value & flag & info [ "normal-keys" ] ~doc)
  in
  let short =
    let doc = "Generate mainly short-lived intervals instead of long-lived." in
    Arg.(value & flag & info [ "short-intervals" ] ~doc)
  in
  let skew =
    let doc = "Zipf exponent for versions-per-key (0 = even, the paper's shape)." in
    Arg.(value & opt float 0. & info [ "skew" ] ~doc)
  in
  let seed =
    let doc = "Random seed." in
    Arg.(value & opt int 2001 & info [ "seed" ] ~doc)
  in
  let mk records keys max_key max_time normal short skew seed : Workload.Generator.spec =
    {
      n_records = records;
      n_keys = (match keys with Some k -> k | None -> max 1 (records / 100));
      max_key;
      max_time;
      key_distribution =
        (if normal then Workload.Generator.Normal { mean_frac = 0.5; stddev_frac = 0.1 }
         else Workload.Generator.Uniform);
      interval_style =
        (if short then Workload.Generator.Short_lived else Workload.Generator.Long_lived);
      value_bound = 1000;
      version_skew = skew;
      seed;
    }
  in
  Term.(const mk $ records $ keys $ max_key $ max_time $ normal $ short $ skew $ seed)

let mvsbt_config_term =
  let b =
    let doc = "Page capacity in records (default models 4KB pages)." in
    Arg.(value & opt int 170 & info [ "b" ] ~doc)
  in
  let f =
    let doc = "Strong factor in (0,1]." in
    Arg.(value & opt float 0.9 & info [ "f" ] ~doc)
  in
  let plain =
    let doc = "Use the unoptimised section-4.1 insertion algorithm." in
    Arg.(value & flag & info [ "plain" ] ~doc)
  in
  let no_merging =
    let doc = "Disable record merging (section 4.2.2)." in
    Arg.(value & flag & info [ "no-merging" ] ~doc)
  in
  let no_disposal =
    let doc = "Disable page disposal (section 4.2.3)." in
    Arg.(value & flag & info [ "no-disposal" ] ~doc)
  in
  let buffer =
    let doc = "LRU buffer pool capacity in pages." in
    Arg.(value & opt int 64 & info [ "buffer" ] ~doc)
  in
  let mk b f plain no_merging no_disposal buffer =
    ( { (Mvsbt.default_config ~b) with
        Mvsbt.f;
        variant = (if plain then Mvsbt.Plain else Mvsbt.Logical);
        merging = not no_merging;
        disposal = not no_disposal;
      },
      buffer )
  in
  Term.(const mk $ b $ f $ plain $ no_merging $ no_disposal $ buffer)

(* --- WAL / durability arguments ----------------------------------------------- *)

let sync_policy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "never" -> Ok Wal.Never
    | "always" -> Ok Wal.Always
    | s ->
        let n =
          match String.index_opt s ':' with
          | Some i when String.sub s 0 i = "every" ->
              int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          | _ -> int_of_string_opt s
        in
        (match n with
        | Some n when n > 0 -> Ok (Wal.Every_n n)
        | _ -> Error (`Msg (Printf.sprintf "bad sync policy %S (never|always|every:N)" s)))
  in
  Arg.conv (parse, Wal.pp_sync_policy)

let sync_policy_term =
  let doc =
    "WAL fsync policy: $(b,never), $(b,always), or $(b,every:N) (group commit, one fsync \
     per N appends)."
  in
  Arg.(value & opt sync_policy_conv (Wal.Every_n 32) & info [ "sync" ] ~doc)

let checkpoint_every_term =
  let doc = "Checkpoint automatically every N logged updates (0 = manual only)." in
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~doc)

let wal_doc =
  "Durable-engine path prefix: the log lives at PREFIX.wal, the committed checkpoint \
   pointer at PREFIX.ckpt, and snapshot files at PREFIX.ckpt-<gen>.{lkst,lklt,meta}."

let wal_opt_term =
  Arg.(value & opt (some string) None & info [ "wal" ] ~doc:wal_doc ~docv:"PREFIX")

let wal_req_term =
  Arg.(required & opt (some string) None & info [ "wal" ] ~doc:wal_doc ~docv:"PREFIX")

let report_durable eng =
  let rta = Durable.warehouse eng in
  Printf.printf "  warehouse: %d updates, %d pages, now=%d\n" (Rta.n_updates rta)
    (Rta.page_count rta) (Rta.now rta);
  Format.printf "  wal: %a@." Wal.Stats.pp (Durable.wal_stats eng);
  Format.printf "  sync policy: %a; checkpoints this run: %d (since last: %d updates)@."
    Wal.pp_sync_policy (Durable.sync_policy eng) (Durable.checkpoints eng)
    (Durable.updates_since_checkpoint eng);
  Format.printf "  health: %a%a@." Durable.pp_health (Durable.health eng)
    (fun ppf () ->
      match Durable.last_error eng with
      | Some e -> Format.fprintf ppf " (last error: %a)" Storage.Storage_error.pp e
      | None -> ())
    ();
  Format.printf "  io: %a@." Storage.Io_stats.pp (Durable.io_stats eng)

(* --- Helpers ------------------------------------------------------------------ *)

let input_term =
  let doc = "Replay events from a trace file (as written by generate) instead of generating." in
  Arg.(value & opt (some file) None & info [ "input" ] ~doc)

let events_of ~spec ~input =
  match input with
  | Some path -> Workload.Trace.load ~path
  | None -> Workload.Generator.events spec

let build_rta ~spec ~config ~buffer ~input =
  let stats = Storage.Io_stats.create () in
  let rta =
    Rta.create ~config ~pool_capacity:buffer ~stats
      ~max_key:spec.Workload.Generator.max_key ()
  in
  let events = events_of ~spec ~input in
  let (), m =
    Storage.Cost_model.measure ~stats (fun () ->
        Workload.Trace.replay events
          ~insert:(fun ~key ~value ~at -> Rta.insert rta ~key ~value ~at)
          ~delete:(fun ~key ~at -> Rta.delete rta ~key ~at))
  in
  Logs.info (fun l -> l "replayed %d events" (List.length events));
  (rta, stats, m)

let report_build ~label (m : Storage.Cost_model.measurement) ~pages ~updates =
  Printf.printf "%s: built from %d updates\n" label updates;
  Printf.printf "  pages: %d (%.2f MB at 4KB)\n" pages (float_of_int pages *. 4096. /. 1e6);
  Printf.printf "  build: %d reads, %d writes, %.3f s CPU, %.3f s estimated\n" m.reads
    m.writes m.cpu_s m.estimated_s;
  Printf.printf "  per update: %.3f I/Os, %.4f ms estimated\n"
    (float_of_int (m.reads + m.writes) /. float_of_int updates)
    (m.estimated_s *. 1000. /. float_of_int updates)

(* --- generate ------------------------------------------------------------------ *)

let generate verbosity spec out =
  setup_logs verbosity;
  let events = Workload.Generator.events spec in
  (match out with
  | Some path -> Workload.Trace.save events ~path
  | None -> Workload.Trace.save_channel events stdout);
  Logs.app (fun l -> l "wrote %d events" (List.length events))

let generate_cmd =
  let out =
    let doc = "Output file (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a transaction-time workload (TimeIT substitute)")
    Term.(const generate $ verbosity $ spec_term $ out)

(* --- build ----------------------------------------------------------------------- *)

let build_durable ~spec ~config ~buffer ~input ~path ~sync_policy ~checkpoint_every =
  let stats = Storage.Io_stats.create () in
  let eng =
    Durable.open_ ~config ~pool_capacity:buffer ~stats ~sync_policy ~checkpoint_every
      ~max_key:spec.Workload.Generator.max_key ~path ()
  in
  if Durable.replayed_on_open eng > 0 then
    Printf.printf "recovered %d logged updates before building\n"
      (Durable.replayed_on_open eng);
  let events = events_of ~spec ~input in
  let ok = Storage.Storage_error.ok_exn in
  let (), m =
    Storage.Cost_model.measure ~stats (fun () ->
        Workload.Trace.replay events
          ~insert:(fun ~key ~value ~at -> ok (Durable.insert eng ~key ~value ~at))
          ~delete:(fun ~key ~at -> ok (Durable.delete eng ~key ~at)))
  in
  let rta = Durable.warehouse eng in
  report_build ~label:"2-MVSBT (durable)" m ~pages:(Rta.page_count rta)
    ~updates:(Rta.n_updates rta);
  Rta.check_invariants rta;
  Printf.printf "  invariants: ok\n";
  report_durable eng;
  Durable.close eng

let build verbosity spec (config, buffer) input snapshot wal sync_policy checkpoint_every =
  setup_logs verbosity;
  match wal with
  | Some path ->
      if snapshot <> None then
        Printf.printf "note: --save is ignored with --wal (use the checkpoint subcommand)\n";
      build_durable ~spec ~config ~buffer ~input ~path ~sync_policy ~checkpoint_every
  | None -> (
      let rta, _stats, m = build_rta ~spec ~config ~buffer ~input in
      report_build ~label:"2-MVSBT" m ~pages:(Rta.page_count rta) ~updates:(Rta.n_updates rta);
      Rta.check_invariants rta;
      Printf.printf "  invariants: ok\n";
      match snapshot with
      | Some path ->
          Rta.save rta ~path;
          Printf.printf "  snapshot saved to %s.{lkst,lklt,meta}\n" path
      | None -> ())

let snapshot_out_term =
  let doc = "Save the built index as a snapshot (three files under this prefix)." in
  Arg.(value & opt (some string) None & info [ "save" ] ~doc)

let build_cmd =
  Cmd.v
    (Cmd.info "build" ~doc:"Build the two-MVSBT index from a generated or replayed workload")
    Term.(const build $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ snapshot_out_term $ wal_opt_term $ sync_policy_term $ checkpoint_every_term)

(* --- query ----------------------------------------------------------------------- *)

let query verbosity spec (config, buffer) input snapshot rect_opt n_random qrs =
  setup_logs verbosity;
  let rta, stats =
    match snapshot with
    | Some path ->
        let stats = Storage.Io_stats.create () in
        (Rta.load ~pool_capacity:buffer ~stats ~path (), stats)
    | None ->
        let rta, stats, _ = build_rta ~spec ~config ~buffer ~input in
        (rta, stats)
  in
  let run (klo, khi, tlo, thi) =
    let (sum, count), m =
      Storage.Cost_model.measure ~stats (fun () -> Rta.sum_count rta ~klo ~khi ~tlo ~thi)
    in
    Printf.printf "[%d, %d) x [%d, %d): SUM=%d COUNT=%d AVG=%s  (%d I/Os, %.2f ms est)\n"
      klo khi tlo thi sum count
      (if count = 0 then "-" else Printf.sprintf "%.3f" (float_of_int sum /. float_of_int count))
      (m.reads + m.writes) (m.estimated_s *. 1000.)
  in
  (match rect_opt with
  | Some r -> run r
  | None ->
      let rng = Workload.Rng.create ~seed:(spec.Workload.Generator.seed + 1) in
      let rects =
        Workload.Query_gen.batch rng ~n:n_random ~max_key:spec.max_key
          ~max_time:spec.max_time ~qrs ~r_over_i:1.0
      in
      List.iter (fun (r : Workload.Query_gen.rect) -> run (r.klo, r.khi, r.tlo, r.thi)) rects)

let query_cmd =
  let rect =
    let doc = "Explicit query rectangle KLO,KHI,TLO,THI." in
    Arg.(value & opt (some (t4 int int int int)) None & info [ "rect" ] ~doc)
  in
  let n_random =
    let doc = "Number of random queries when no --rect is given." in
    Arg.(value & opt int 5 & info [ "queries" ] ~doc)
  in
  let qrs =
    let doc = "Query rectangle size as an area fraction for random queries." in
    Arg.(value & opt float 0.01 & info [ "qrs" ] ~doc)
  in
  let snapshot_in =
    let doc = "Load the index from a snapshot prefix instead of building." in
    Arg.(value & opt (some string) None & info [ "load" ] ~doc)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer RTA queries over a built or loaded index")
    Term.(const query $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ snapshot_in $ rect $ n_random $ qrs)

(* --- compare ----------------------------------------------------------------------- *)

let compare_cmd_impl verbosity spec (config, buffer) input qrs n =
  setup_logs verbosity;
  let rta, rta_stats, m2 = build_rta ~spec ~config ~buffer ~input in
  let mvbt_stats = Storage.Io_stats.create () in
  let mvbt =
    Mvbt.create
      ~config:(Mvbt.default_config ~b:256)
      ~pool_capacity:buffer ~stats:mvbt_stats ~max_key:spec.max_key ()
  in
  let (), m1 =
    Storage.Cost_model.measure ~stats:mvbt_stats (fun () ->
        Workload.Trace.replay (events_of ~spec ~input)
          ~insert:(fun ~key ~value ~at -> Mvbt.insert mvbt ~key ~value ~at)
          ~delete:(fun ~key ~at -> Mvbt.delete mvbt ~key ~at))
  in
  report_build ~label:"MVBT (baseline)" m1 ~pages:(Mvbt.page_count mvbt)
    ~updates:(Mvbt.n_updates mvbt);
  report_build ~label:"2-MVSBT" m2 ~pages:(Rta.page_count rta) ~updates:(Rta.n_updates rta);
  let rng = Workload.Rng.create ~seed:(spec.seed + 7) in
  let rects =
    Workload.Query_gen.batch rng ~n ~max_key:spec.max_key ~max_time:spec.max_time ~qrs
      ~r_over_i:1.0
  in
  Mvbt.drop_cache mvbt;
  Rta.drop_cache rta;
  let naive, mn =
    Storage.Cost_model.measure ~stats:mvbt_stats (fun () ->
        List.map
          (fun (r : Workload.Query_gen.rect) ->
            let { Naive_rta.sum; count } =
              Naive_rta.sum_count mvbt ~klo:r.klo ~khi:r.khi ~tlo:r.tlo ~thi:r.thi
            in
            (sum, count))
          rects)
  in
  let ours, mo =
    Storage.Cost_model.measure ~stats:rta_stats (fun () ->
        List.map
          (fun (r : Workload.Query_gen.rect) ->
            Rta.sum_count rta ~klo:r.klo ~khi:r.khi ~tlo:r.tlo ~thi:r.thi)
          rects)
  in
  let agree = naive = ours in
  Printf.printf "query batch (%d queries at QRS=%.4f): results agree: %b\n" n qrs agree;
  Printf.printf "  MVBT naive : %d I/Os, %.4f s estimated\n" (mn.reads + mn.writes)
    mn.estimated_s;
  Printf.printf "  2-MVSBT    : %d I/Os, %.4f s estimated\n" (mo.reads + mo.writes)
    mo.estimated_s;
  Printf.printf "  speedup    : %.1fx\n" (mn.estimated_s /. mo.estimated_s);
  if not agree then exit 1

let compare_cmd =
  let qrs =
    let doc = "Query rectangle size as an area fraction." in
    Arg.(value & opt float 0.01 & info [ "qrs" ] ~doc)
  in
  let n =
    let doc = "Number of queries in the batch." in
    Arg.(value & opt int 100 & info [ "queries" ] ~doc)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Build both the 2-MVSBT and the MVBT baseline and race a query batch")
    Term.(const compare_cmd_impl $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ qrs $ n)

(* --- checkpoint / recover -------------------------------------------------------- *)

let engine_max_key_term =
  let doc = "Key space upper bound the engine was created with." in
  Arg.(value & opt int 1_000_000_000 & info [ "max-key" ] ~doc)

let engine_buffer_term =
  let doc = "LRU buffer pool capacity in pages." in
  Arg.(value & opt int 64 & info [ "buffer" ] ~doc)

let checkpoint_impl verbosity max_key buffer wal sync_policy =
  setup_logs verbosity;
  let eng = Durable.open_ ~pool_capacity:buffer ~sync_policy ~max_key ~path:wal () in
  Printf.printf "recovered: %d WAL records replayed on open\n" (Durable.replayed_on_open eng);
  (match Durable.checkpoint eng with
  | Ok () ->
      Printf.printf
        "checkpoint committed under %s.ckpt-<gen>.{lkst,lklt,meta}; log truncated\n" wal
  | Error e ->
      Format.printf "checkpoint failed: %a (previous checkpoint and WAL intact)@."
        Storage.Storage_error.pp e;
      report_durable eng;
      Durable.close eng;
      exit 1);
  report_durable eng;
  Durable.close eng

let checkpoint_cmd =
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Recover a durable warehouse, snapshot it, and truncate its log")
    Term.(const checkpoint_impl $ verbosity $ engine_max_key_term $ engine_buffer_term
          $ wal_req_term $ sync_policy_term)

let recover_impl verbosity max_key buffer wal sync_policy rect_opt =
  setup_logs verbosity;
  let eng = Durable.open_ ~pool_capacity:buffer ~sync_policy ~max_key ~path:wal () in
  let rta = Durable.warehouse eng in
  Format.printf "recovered %s: %a@." wal Durable.pp_recovery_report
    (Durable.recovery_report eng);
  Rta.check_invariants rta;
  Printf.printf "  invariants: ok\n";
  report_durable eng;
  (match rect_opt with
  | Some (klo, khi, tlo, thi) ->
      let sum, count = Durable.sum_count eng ~klo ~khi ~tlo ~thi in
      Printf.printf "[%d, %d) x [%d, %d): SUM=%d COUNT=%d AVG=%s\n" klo khi tlo thi sum count
        (if count = 0 then "-"
         else Printf.sprintf "%.3f" (float_of_int sum /. float_of_int count))
  | None -> ());
  Durable.close eng

let recover_cmd =
  let rect =
    let doc = "Sanity query rectangle KLO,KHI,TLO,THI to run after recovery." in
    Arg.(value & opt (some (t4 int int int int)) None & info [ "rect" ] ~doc)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a durable warehouse from its checkpoint and log and report its state")
    Term.(const recover_impl $ verbosity $ engine_max_key_term $ engine_buffer_term
          $ wal_req_term $ sync_policy_term $ rect)

(* --- scrub ------------------------------------------------------------------------ *)

(* A small deterministic workload for [--demo]: enough churn to spread
   records over a few dozen pages of both MVSBTs. *)
let demo_updates ~n ~seed =
  let rng = Random.State.make [| seed; 0xdead |] in
  let alive = Hashtbl.create 64 in
  let now = ref 0 in
  let max_key = 256 in
  List.init n (fun _ ->
      now := !now + Random.State.int rng 3;
      let key = Random.State.int rng max_key in
      if Hashtbl.length alive = max_key
         || (Hashtbl.mem alive key && Random.State.bool rng) then begin
        let key = ref key in
        while not (Hashtbl.mem alive !key) do
          key := (!key + 1) mod max_key
        done;
        Hashtbl.remove alive !key;
        `Delete (!key, !now)
      end
      else begin
        let key = ref key in
        while Hashtbl.mem alive !key do
          key := (!key + 1) mod max_key
        done;
        Hashtbl.add alive !key ();
        `Insert (!key, 1 + Random.State.int rng 1000, !now)
      end)

let build_demo_warehouse ~page_size ~n ~seed ~path =
  let rta = Rta.create_durable ~page_size ~max_key:256 ~path () in
  List.iter
    (function
      | `Insert (key, value, at) -> Rta.insert rta ~key ~value ~at
      | `Delete (key, at) -> Rta.delete rta ~key ~at)
    (demo_updates ~n ~seed);
  Rta.flush rta;
  rta

let run_scrub ~stats ~page_size ?repair_from ~path () =
  let report = Rta.scrub ~stats ~page_size ?repair_from ~path () in
  Format.printf "scrub %s: %a@." path Rta.pp_scrub_report report;
  report

let scrub_impl verbosity page_size wal inject seed repair_from demo =
  setup_logs verbosity;
  let stats = Storage.Io_stats.create () in
  let repair_from =
    match (repair_from, demo) with
    | Some p, _ -> Some (Rta.reopen_durable ~page_size ~path:p ())
    | None, Some n ->
        (* Self-contained round trip: build the warehouse and a matching
           reference, corrupt the former, repair from the latter. *)
        let _target = build_demo_warehouse ~page_size ~n ~seed ~path:wal in
        Printf.printf "demo: built %d-update warehouse at %s (+ reference at %s.ref)\n" n
          wal wal;
        Some (build_demo_warehouse ~page_size ~n ~seed ~path:(wal ^ ".ref"))
    | None, None -> None
  in
  (match inject with
  | Some flips when flips > 0 ->
      let hits = Rta.inject_bit_flips ~page_size ~path:wal ~seed ~flips () in
      Printf.printf "injected single-bit flips into %d pages\n" (List.length hits)
  | _ -> ());
  let report = run_scrub ~stats ~page_size ?repair_from ~path:wal () in
  let final =
    if report.Rta.repaired <> [] then run_scrub ~stats ~page_size ~path:wal ()
    else report
  in
  Format.printf "  io: %a@." Storage.Io_stats.pp stats;
  if not (Rta.scrub_clean final || final.Rta.corrupt = final.Rta.repaired) then exit 1

let scrub_cmd =
  let page_size =
    let doc = "Page size of the warehouse's page files." in
    Arg.(value & opt int 4096 & info [ "page-size" ] ~doc)
  in
  let path =
    let doc =
      "Durable warehouse path prefix (page files at PREFIX.lkst.pages / \
       PREFIX.lklt.pages, sidecar at PREFIX.rta.meta)."
    in
    Arg.(required & opt (some string) None & info [ "path" ] ~doc ~docv:"PREFIX")
  in
  let inject =
    let doc = "First flip one random bit in each of N distinct pages (testing/demo)." in
    Arg.(value & opt (some int) None & info [ "inject-flips" ] ~doc ~docv:"N")
  in
  let seed =
    let doc = "Random seed for --inject-flips." in
    Arg.(value & opt int 7 & info [ "seed" ] ~doc)
  in
  let repair_from =
    let doc =
      "Reopen the durable warehouse at this prefix as the repair reference (it must \
       have gone through the same update sequence)."
    in
    Arg.(value & opt (some string) None & info [ "repair-from" ] ~doc ~docv:"PREFIX")
  in
  let demo =
    let doc =
      "Build a fresh N-update demo warehouse at the prefix (plus a matching reference \
       at PREFIX.ref) before scrubbing — a self-contained corruption round trip with \
       --inject-flips."
    in
    Arg.(value & opt (some int) None & info [ "demo" ] ~doc ~docv:"N")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify the per-page checksums of a durable warehouse and repair corrupt pages \
          from a reference (exits 1 if corruption remains)")
    Term.(const scrub_impl $ verbosity $ page_size $ path $ inject $ seed $ repair_from
          $ demo)

(* --- crash-matrix ----------------------------------------------------------------- *)

let crash_matrix_impl verbosity updates max_key checkpoint_every sync_policy seed limit
    smoke =
  setup_logs verbosity;
  let updates, limit =
    if smoke then (min updates 60, Some (match limit with Some l -> l | None -> 80))
    else (updates, limit)
  in
  let trace =
    Faultsim.Harness.run_trace ~sync_policy ~checkpoint_every ~seed ~updates ~max_key ()
  in
  let report = Faultsim.Harness.check ?limit trace in
  Format.printf "crash matrix (%d updates, checkpoint every %d, %a): %a@." updates
    checkpoint_every Wal.pp_sync_policy sync_policy Faultsim.Harness.pp_report report;
  if report.Faultsim.Harness.violations <> [] then exit 1

let crash_matrix_cmd =
  let updates =
    let doc = "Updates in the generated trace." in
    Arg.(value & opt int 120 & info [ "updates" ] ~doc)
  in
  let max_key =
    let doc = "Key space of the generated trace." in
    Arg.(value & opt int 24 & info [ "max-key" ] ~doc)
  in
  let checkpoint_every =
    let doc = "Checkpoint automatically every N updates while generating the trace." in
    Arg.(value & opt int 40 & info [ "checkpoint-every" ] ~doc)
  in
  let seed =
    let doc = "Random seed for the trace." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let limit =
    let doc = "Check at most N crash images (stride-sampled); default checks all." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~doc ~docv:"N")
  in
  let smoke =
    let doc = "Bounded CI run: caps the trace at 60 updates and the matrix at 80 images." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  Cmd.v
    (Cmd.info "crash-matrix"
       ~doc:
         "Enumerate every legal post-crash disk image of a workload trace, run recovery \
          on each, and verify the recovered state (exits 1 on any violation)")
    Term.(const crash_matrix_impl $ verbosity $ updates $ max_key $ checkpoint_every
          $ sync_policy_term $ seed $ limit $ smoke)

(* --- errsweep --------------------------------------------------------------------- *)

let err_class_conv =
  let parse s =
    match Storage.Vfs.Inject.class_of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown errno class %S (enospc|eio|eintr|short)" s))
  in
  Arg.conv (parse, Storage.Vfs.Inject.pp_class)

let errsweep_impl verbosity updates max_key sync_policy checkpoint_at checkpoint_every seed
    query_count classes limit smoke =
  setup_logs verbosity;
  let spec =
    { Faultsim.Errsweep.updates; max_key; sync_policy; checkpoint_at; checkpoint_every;
      seed; query_count }
  in
  let spec, limit =
    if smoke then
      ( { spec with Faultsim.Errsweep.updates = min updates 60; checkpoint_at = 30 },
        Some (match limit with Some l -> l | None -> 60) )
    else (spec, limit)
  in
  let classes = match classes with [] -> Storage.Vfs.Inject.all_classes | cs -> cs in
  let report = Faultsim.Errsweep.run ~classes ?limit_per_class:limit spec in
  Format.printf "error sweep (%d updates, checkpoint at %d, %a, classes:%a): %a@."
    spec.Faultsim.Errsweep.updates spec.Faultsim.Errsweep.checkpoint_at Wal.pp_sync_policy
    spec.Faultsim.Errsweep.sync_policy
    (fun ppf cs ->
      List.iter (fun c -> Format.fprintf ppf " %a" Storage.Vfs.Inject.pp_class c) cs)
    classes Faultsim.Errsweep.pp_report report;
  if not (Faultsim.Errsweep.clean report) then exit 1

let errsweep_cmd =
  let updates =
    let doc = "Updates in the scripted trace." in
    Arg.(value & opt int 120 & info [ "updates" ] ~doc)
  in
  let max_key =
    let doc = "Key space of the scripted trace." in
    Arg.(value & opt int 24 & info [ "max-key" ] ~doc)
  in
  let checkpoint_at =
    let doc = "Take a manual checkpoint after N scripted updates (0 = never)." in
    Arg.(value & opt int 60 & info [ "checkpoint-at" ] ~doc)
  in
  let seed =
    let doc = "Random seed for the trace." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let query_count =
    let doc = "Query panel size checked against the oracle after each run." in
    Arg.(value & opt int 12 & info [ "queries" ] ~doc)
  in
  let classes =
    let doc = "Errno class to sweep (repeatable); default sweeps all four." in
    Arg.(value & opt_all err_class_conv [] & info [ "class" ] ~doc ~docv:"CLASS")
  in
  let limit =
    let doc = "Sweep at most N evenly spaced fault points per class; default sweeps all." in
    Arg.(value & opt (some int) None & info [ "limit-per-class" ] ~doc ~docv:"N")
  in
  let smoke =
    let doc = "Bounded CI run: caps the trace at 60 updates and 60 points per class." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  Cmd.v
    (Cmd.info "errsweep"
       ~doc:
         "Sweep single I/O-error injections (ENOSPC/EIO/EINTR/short transfers) over every \
          syscall of a workload trace and verify typed-error surfacing, oracle-equal \
          answers, read-only degradation, and recovery (exits 1 on any violation)")
    Term.(const errsweep_impl $ verbosity $ updates $ max_key $ sync_policy_term
          $ checkpoint_at $ checkpoint_every_term $ seed $ query_count $ classes $ limit
          $ smoke)

(* --- dot ------------------------------------------------------------------------- *)

let dot verbosity spec (config, buffer) input out =
  setup_logs verbosity;
  let rta, _, _ = build_rta ~spec ~config ~buffer ~input in
  let write ppf = Format.fprintf ppf "%a@." Rta.pp_dot rta in
  match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
      write (Format.formatter_of_out_channel oc)
  | None -> write Format.std_formatter

let dot_cmd =
  let out =
    let doc = "Output file for the Graphviz rendering (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render the MVSBT page graphs as Graphviz (small workloads only)")
    Term.(const dot $ verbosity $ spec_term $ mvsbt_config_term $ input_term $ out)

let () =
  let info =
    Cmd.info "mvsbt-rta" ~version:"1.0.0"
      ~doc:"Range-temporal aggregates with the Multiversion SB-tree (PODS 2001)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; build_cmd; query_cmd; compare_cmd; checkpoint_cmd; recover_cmd;
            scrub_cmd; crash_matrix_cmd; errsweep_cmd; dot_cmd ]))
