(* Command-line driver for the range-temporal aggregation system.

   Subcommands:
     generate   — emit a workload as a text event stream
     build      — replay a workload into the 2-MVSBT index and report stats
                  (with --wal, through the durable write-ahead-logged engine)
     query      — build, then answer ad-hoc or random RTA queries
     compare    — build both 2-MVSBT and MVBT, run a query batch on each
     checkpoint — recover a durable warehouse, snapshot it, truncate its log
     recover    — recover a durable warehouse and report what was replayed
     scrub      — verify per-page checksums, repair from a reference warehouse
     crash-matrix — enumerate post-crash disk images and verify recovery on each
     errsweep   — sweep single I/O-error injections over a trace and verify the
                  typed-error / read-only degradation contract
     serve      — serve the wire protocol over a durable warehouse (event loop,
                  group commit, admission control)
     netbench   — closed-loop load generator against a running serve instance *)

let setup_logs verbosity =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (match verbosity with 0 -> Some Logs.Warning | 1 -> Some Logs.Info | _ -> Some Logs.Debug)

(* --- Shared argument bundles ------------------------------------------------ *)

open Cmdliner

let verbosity =
  let doc = "Verbosity (-v info, -vv debug)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)
  |> Term.map List.length

let spec_term =
  let records =
    let doc = "Number of tuple versions to generate." in
    Arg.(value & opt int 20_000 & info [ "n"; "records" ] ~doc)
  in
  let keys =
    let doc = "Number of unique keys (about records/100 by default)." in
    Arg.(value & opt (some int) None & info [ "keys" ] ~doc)
  in
  let max_key =
    let doc = "Key space upper bound (exclusive)." in
    Arg.(value & opt int 1_000_000_000 & info [ "max-key" ] ~doc)
  in
  let max_time =
    let doc = "Time space upper bound (exclusive)." in
    Arg.(value & opt int 100_000_000 & info [ "max-time" ] ~doc)
  in
  let normal =
    let doc = "Draw keys from a normal distribution instead of uniform." in
    Arg.(value & flag & info [ "normal-keys" ] ~doc)
  in
  let short =
    let doc = "Generate mainly short-lived intervals instead of long-lived." in
    Arg.(value & flag & info [ "short-intervals" ] ~doc)
  in
  let skew =
    let doc = "Zipf exponent for versions-per-key (0 = even, the paper's shape)." in
    Arg.(value & opt float 0. & info [ "skew" ] ~doc)
  in
  let seed =
    let doc = "Random seed." in
    Arg.(value & opt int 2001 & info [ "seed" ] ~doc)
  in
  let mk records keys max_key max_time normal short skew seed : Workload.Generator.spec =
    {
      n_records = records;
      n_keys = (match keys with Some k -> k | None -> max 1 (records / 100));
      max_key;
      max_time;
      key_distribution =
        (if normal then Workload.Generator.Normal { mean_frac = 0.5; stddev_frac = 0.1 }
         else Workload.Generator.Uniform);
      interval_style =
        (if short then Workload.Generator.Short_lived else Workload.Generator.Long_lived);
      value_bound = 1000;
      version_skew = skew;
      seed;
    }
  in
  Term.(const mk $ records $ keys $ max_key $ max_time $ normal $ short $ skew $ seed)

let mvsbt_config_term =
  let b =
    let doc = "Page capacity in records (default models 4KB pages)." in
    Arg.(value & opt int 170 & info [ "b" ] ~doc)
  in
  let f =
    let doc = "Strong factor in (0,1]." in
    Arg.(value & opt float 0.9 & info [ "f" ] ~doc)
  in
  let plain =
    let doc = "Use the unoptimised section-4.1 insertion algorithm." in
    Arg.(value & flag & info [ "plain" ] ~doc)
  in
  let no_merging =
    let doc = "Disable record merging (section 4.2.2)." in
    Arg.(value & flag & info [ "no-merging" ] ~doc)
  in
  let no_disposal =
    let doc = "Disable page disposal (section 4.2.3)." in
    Arg.(value & flag & info [ "no-disposal" ] ~doc)
  in
  let buffer =
    let doc = "LRU buffer pool capacity in pages." in
    Arg.(value & opt int 64 & info [ "buffer" ] ~doc)
  in
  let mk b f plain no_merging no_disposal buffer =
    ( { (Mvsbt.default_config ~b) with
        Mvsbt.f;
        variant = (if plain then Mvsbt.Plain else Mvsbt.Logical);
        merging = not no_merging;
        disposal = not no_disposal;
      },
      buffer )
  in
  Term.(const mk $ b $ f $ plain $ no_merging $ no_disposal $ buffer)

(* --- WAL / durability arguments ----------------------------------------------- *)

let sync_policy_conv =
  let parse s =
    match String.lowercase_ascii s with
    | "never" -> Ok Wal.Never
    | "always" -> Ok Wal.Always
    | s ->
        let n =
          match String.index_opt s ':' with
          | Some i when String.sub s 0 i = "every" ->
              int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1))
          | _ -> int_of_string_opt s
        in
        (match n with
        | Some n when n > 0 -> Ok (Wal.Every_n n)
        | _ -> Error (`Msg (Printf.sprintf "bad sync policy %S (never|always|every:N)" s)))
  in
  Arg.conv (parse, Wal.pp_sync_policy)

let sync_policy_term =
  let doc =
    "WAL fsync policy: $(b,never), $(b,always), or $(b,every:N) (group commit, one fsync \
     per N appends)."
  in
  Arg.(value & opt sync_policy_conv (Wal.Every_n 32) & info [ "sync" ] ~doc)

let checkpoint_every_term =
  let doc = "Checkpoint automatically every N logged updates (0 = manual only)." in
  Arg.(value & opt int 0 & info [ "checkpoint-every" ] ~doc)

let store_conv =
  let parse s =
    match Storage.Store_kind.of_string s with
    | Some k -> Ok k
    | None -> Error (`Msg (Printf.sprintf "bad store kind %S (memory|file|mmap)" s))
  in
  Arg.conv (parse, Storage.Store_kind.pp)

let store_term =
  let doc =
    "Page backend for the durable engine's working set: $(b,memory) (in-heap, the \
     default), $(b,file) (CRC-framed blocks via pread/pwrite), or $(b,mmap) \
     (memory-mapped arena, zero-copy codecs; falls back to a buffered arena where \
     mapping is unavailable)."
  in
  Arg.(value & opt store_conv Storage.Store_kind.Memory & info [ "store" ] ~doc)

let wal_doc =
  "Durable-engine path prefix: the log lives at PREFIX.wal, the committed checkpoint \
   pointer at PREFIX.ckpt, and snapshot files at PREFIX.ckpt-<gen>.{lkst,lklt,meta}."

let wal_opt_term =
  Arg.(value & opt (some string) None & info [ "wal" ] ~doc:wal_doc ~docv:"PREFIX")

let wal_req_term =
  Arg.(required & opt (some string) None & info [ "wal" ] ~doc:wal_doc ~docv:"PREFIX")

let report_durable eng =
  let rta = Durable.warehouse eng in
  Printf.printf "  warehouse: %d updates, %d pages, now=%d, horizon=%d\n"
    (Rta.n_updates rta) (Rta.page_count rta) (Rta.now rta) (Durable.horizon eng);
  Format.printf "  wal: %a@." Wal.Stats.pp (Durable.wal_stats eng);
  Format.printf "  sync policy: %a; checkpoints this run: %d (since last: %d updates)@."
    Wal.pp_sync_policy (Durable.sync_policy eng) (Durable.checkpoints eng)
    (Durable.updates_since_checkpoint eng);
  Format.printf "  health: %a%a@." Durable.pp_health (Durable.health eng)
    (fun ppf () ->
      match Durable.last_error eng with
      | Some e -> Format.fprintf ppf " (last error: %a)" Storage.Storage_error.pp e
      | None -> ())
    ();
  Format.printf "  io: %a@." Storage.Io_stats.pp (Durable.io_stats eng)

(* --- Helpers ------------------------------------------------------------------ *)

let input_term =
  let doc = "Replay events from a trace file (as written by generate) instead of generating." in
  Arg.(value & opt (some file) None & info [ "input" ] ~doc)

let events_of ~spec ~input =
  match input with
  | Some path -> Workload.Trace.load ~path
  | None -> Workload.Generator.events spec

let build_rta ~spec ~config ~buffer ~input =
  let stats = Storage.Io_stats.create () in
  let rta =
    Rta.create ~config ~pool_capacity:buffer ~stats
      ~max_key:spec.Workload.Generator.max_key ()
  in
  let events = events_of ~spec ~input in
  let (), m =
    Storage.Cost_model.measure ~stats (fun () ->
        Workload.Trace.replay events
          ~insert:(fun ~key ~value ~at -> Rta.insert rta ~key ~value ~at)
          ~delete:(fun ~key ~at -> Rta.delete rta ~key ~at))
  in
  Logs.info (fun l -> l "replayed %d events" (List.length events));
  (rta, stats, m)

let report_build ~label (m : Storage.Cost_model.measurement) ~pages ~updates =
  Printf.printf "%s: built from %d updates\n" label updates;
  Printf.printf "  pages: %d (%.2f MB at 4KB)\n" pages (float_of_int pages *. 4096. /. 1e6);
  Printf.printf "  build: %d reads, %d writes, %.3f s CPU, %.3f s estimated\n" m.reads
    m.writes m.cpu_s m.estimated_s;
  Printf.printf "  per update: %.3f I/Os, %.4f ms estimated\n"
    (float_of_int (m.reads + m.writes) /. float_of_int updates)
    (m.estimated_s *. 1000. /. float_of_int updates)

(* --- Machine-parseable reports (--stats-json) --------------------------------- *)

let io_json (s : Telemetry.Io_stats.snapshot) =
  Telemetry.Json.Obj
    [ ("reads", Telemetry.Json.Int s.reads);
      ("writes", Telemetry.Json.Int s.writes);
      ("allocs", Telemetry.Json.Int s.allocs);
      ("frees", Telemetry.Json.Int s.frees);
      ("syncs", Telemetry.Json.Int s.syncs);
      ("crc_failures", Telemetry.Json.Int s.crc_failures);
      ("scrubbed", Telemetry.Json.Int s.scrubbed);
      ("repaired", Telemetry.Json.Int s.repaired);
      ("errors_injected", Telemetry.Json.Int s.errors_injected);
      ("retries", Telemetry.Json.Int s.retries);
      ("read_only_transitions", Telemetry.Json.Int s.read_only_transitions);
      ("pages_reclaimed", Telemetry.Json.Int s.pages_reclaimed);
      ("vacuum_steps", Telemetry.Json.Int s.vacuum_steps);
      ("total_io", Telemetry.Json.Int (Telemetry.Io_stats.snapshot_total_io s)) ]

let measurement_json (m : Storage.Cost_model.measurement) =
  Telemetry.Json.Obj
    [ ("reads", Telemetry.Json.Int m.reads);
      ("writes", Telemetry.Json.Int m.writes);
      ("cpu_s", Telemetry.Json.Float m.cpu_s);
      ("estimated_s", Telemetry.Json.Float m.estimated_s) ]

let health_string h = Format.asprintf "%a" Durable.pp_health h

let print_json j = print_endline (Telemetry.Json.to_string j)

let stats_json_term =
  let doc =
    "Emit the report as a single machine-parseable JSON object on stdout instead of the \
     human-readable text (for CI and scripting)."
  in
  Arg.(value & flag & info [ "stats-json" ] ~doc)

(* --- generate ------------------------------------------------------------------ *)

let generate verbosity spec out =
  setup_logs verbosity;
  let events = Workload.Generator.events spec in
  (match out with
  | Some path -> Workload.Trace.save events ~path
  | None -> Workload.Trace.save_channel events stdout);
  Logs.app (fun l -> l "wrote %d events" (List.length events))

let generate_cmd =
  let out =
    let doc = "Output file (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Generate a transaction-time workload (TimeIT substitute)")
    Term.(const generate $ verbosity $ spec_term $ out)

(* --- build ----------------------------------------------------------------------- *)

let build_durable ~spec ~config ~buffer ~input ~path ~sync_policy ~checkpoint_every
    ~store ~stats_json =
  let stats = Storage.Io_stats.create () in
  let eng =
    Durable.open_ ~config ~pool_capacity:buffer ~stats ~sync_policy ~checkpoint_every
      ~store ~max_key:spec.Workload.Generator.max_key ~path ()
  in
  if (not stats_json) && Durable.replayed_on_open eng > 0 then
    Printf.printf "recovered %d logged updates before building\n"
      (Durable.replayed_on_open eng);
  let events = events_of ~spec ~input in
  let ok = Storage.Storage_error.ok_exn in
  let (), m =
    Storage.Cost_model.measure ~stats (fun () ->
        Workload.Trace.replay events
          ~insert:(fun ~key ~value ~at -> ok (Durable.insert eng ~key ~value ~at))
          ~delete:(fun ~key ~at -> ok (Durable.delete eng ~key ~at)))
  in
  let rta = Durable.warehouse eng in
  Rta.check_invariants rta;
  if stats_json then begin
    let wal_st = Durable.wal_stats eng in
    print_json
      (Telemetry.Json.Obj
         [ ("mode", Telemetry.Json.Str "build-durable");
           ("updates", Telemetry.Json.Int (Rta.n_updates rta));
           ("pages", Telemetry.Json.Int (Rta.page_count rta));
           ("replayed_on_open", Telemetry.Json.Int (Durable.replayed_on_open eng));
           ("checkpoints", Telemetry.Json.Int (Durable.checkpoints eng));
           ("health", Telemetry.Json.Str (health_string (Durable.health eng)));
           ("build", measurement_json m);
           ( "wal",
             Telemetry.Json.Obj
               [ ("appends", Telemetry.Json.Int (Wal.Stats.appends wal_st));
                 ("bytes", Telemetry.Json.Int (Wal.Stats.bytes wal_st));
                 ("fsyncs", Telemetry.Json.Int (Wal.Stats.fsyncs wal_st)) ] );
           ("io", io_json (Storage.Io_stats.snapshot stats));
           ("invariants", Telemetry.Json.Str "ok") ])
  end
  else begin
    report_build ~label:"2-MVSBT (durable)" m ~pages:(Rta.page_count rta)
      ~updates:(Rta.n_updates rta);
    Printf.printf "  invariants: ok\n";
    report_durable eng
  end;
  Durable.close eng

let build verbosity spec (config, buffer) input snapshot wal sync_policy checkpoint_every
    store stats_json =
  setup_logs verbosity;
  match wal with
  | Some path ->
      if snapshot <> None && not stats_json then
        Printf.printf "note: --save is ignored with --wal (use the checkpoint subcommand)\n";
      build_durable ~spec ~config ~buffer ~input ~path ~sync_policy ~checkpoint_every
        ~store ~stats_json
  | None -> (
      let rta, stats, m = build_rta ~spec ~config ~buffer ~input in
      Rta.check_invariants rta;
      if stats_json then
        print_json
          (Telemetry.Json.Obj
             [ ("mode", Telemetry.Json.Str "build");
               ("updates", Telemetry.Json.Int (Rta.n_updates rta));
               ("pages", Telemetry.Json.Int (Rta.page_count rta));
               ("health", Telemetry.Json.Str (health_string Durable.Healthy));
               ("build", measurement_json m);
               ("io", io_json (Storage.Io_stats.snapshot stats));
               ("invariants", Telemetry.Json.Str "ok") ])
      else begin
        report_build ~label:"2-MVSBT" m ~pages:(Rta.page_count rta)
          ~updates:(Rta.n_updates rta);
        Printf.printf "  invariants: ok\n"
      end;
      match snapshot with
      | Some path ->
          Rta.save rta ~path;
          if not stats_json then
            Printf.printf "  snapshot saved to %s.{lkst,lklt,meta}\n" path
      | None -> ())

let snapshot_out_term =
  let doc = "Save the built index as a snapshot (three files under this prefix)." in
  Arg.(value & opt (some string) None & info [ "save" ] ~doc)

let build_cmd =
  Cmd.v
    (Cmd.info "build" ~doc:"Build the two-MVSBT index from a generated or replayed workload")
    Term.(const build $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ snapshot_out_term $ wal_opt_term $ sync_policy_term $ checkpoint_every_term
          $ store_term $ stats_json_term)

(* --- query ----------------------------------------------------------------------- *)

let query verbosity spec (config, buffer) input snapshot rect_opt n_random qrs =
  setup_logs verbosity;
  let rta, stats =
    match snapshot with
    | Some path ->
        let stats = Storage.Io_stats.create () in
        (Rta.load ~pool_capacity:buffer ~stats ~path (), stats)
    | None ->
        let rta, stats, _ = build_rta ~spec ~config ~buffer ~input in
        (rta, stats)
  in
  let run (klo, khi, tlo, thi) =
    let (sum, count), m =
      Storage.Cost_model.measure ~stats (fun () -> Rta.sum_count rta ~klo ~khi ~tlo ~thi)
    in
    Printf.printf "[%d, %d) x [%d, %d): SUM=%d COUNT=%d AVG=%s  (%d I/Os, %.2f ms est)\n"
      klo khi tlo thi sum count
      (if count = 0 then "-" else Printf.sprintf "%.3f" (float_of_int sum /. float_of_int count))
      (m.reads + m.writes) (m.estimated_s *. 1000.)
  in
  (match rect_opt with
  | Some r -> run r
  | None ->
      let rng = Workload.Rng.create ~seed:(spec.Workload.Generator.seed + 1) in
      let rects =
        Workload.Query_gen.batch rng ~n:n_random ~max_key:spec.max_key
          ~max_time:spec.max_time ~qrs ~r_over_i:1.0
      in
      List.iter (fun (r : Workload.Query_gen.rect) -> run (r.klo, r.khi, r.tlo, r.thi)) rects)

let query_cmd =
  let rect =
    let doc = "Explicit query rectangle KLO,KHI,TLO,THI." in
    Arg.(value & opt (some (t4 int int int int)) None & info [ "rect" ] ~doc)
  in
  let n_random =
    let doc = "Number of random queries when no --rect is given." in
    Arg.(value & opt int 5 & info [ "queries" ] ~doc)
  in
  let qrs =
    let doc = "Query rectangle size as an area fraction for random queries." in
    Arg.(value & opt float 0.01 & info [ "qrs" ] ~doc)
  in
  let snapshot_in =
    let doc = "Load the index from a snapshot prefix instead of building." in
    Arg.(value & opt (some string) None & info [ "load" ] ~doc)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Answer RTA queries over a built or loaded index")
    Term.(const query $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ snapshot_in $ rect $ n_random $ qrs)

(* --- compare ----------------------------------------------------------------------- *)

let compare_cmd_impl verbosity spec (config, buffer) input qrs n =
  setup_logs verbosity;
  let rta, rta_stats, m2 = build_rta ~spec ~config ~buffer ~input in
  let mvbt_stats = Storage.Io_stats.create () in
  let mvbt =
    Mvbt.create
      ~config:(Mvbt.default_config ~b:256)
      ~pool_capacity:buffer ~stats:mvbt_stats ~max_key:spec.max_key ()
  in
  let (), m1 =
    Storage.Cost_model.measure ~stats:mvbt_stats (fun () ->
        Workload.Trace.replay (events_of ~spec ~input)
          ~insert:(fun ~key ~value ~at -> Mvbt.insert mvbt ~key ~value ~at)
          ~delete:(fun ~key ~at -> Mvbt.delete mvbt ~key ~at))
  in
  report_build ~label:"MVBT (baseline)" m1 ~pages:(Mvbt.page_count mvbt)
    ~updates:(Mvbt.n_updates mvbt);
  report_build ~label:"2-MVSBT" m2 ~pages:(Rta.page_count rta) ~updates:(Rta.n_updates rta);
  let rng = Workload.Rng.create ~seed:(spec.seed + 7) in
  let rects =
    Workload.Query_gen.batch rng ~n ~max_key:spec.max_key ~max_time:spec.max_time ~qrs
      ~r_over_i:1.0
  in
  Mvbt.drop_cache mvbt;
  Rta.drop_cache rta;
  let naive, mn =
    Storage.Cost_model.measure ~stats:mvbt_stats (fun () ->
        List.map
          (fun (r : Workload.Query_gen.rect) ->
            let { Naive_rta.sum; count } =
              Naive_rta.sum_count mvbt ~klo:r.klo ~khi:r.khi ~tlo:r.tlo ~thi:r.thi
            in
            (sum, count))
          rects)
  in
  let ours, mo =
    Storage.Cost_model.measure ~stats:rta_stats (fun () ->
        List.map
          (fun (r : Workload.Query_gen.rect) ->
            Rta.sum_count rta ~klo:r.klo ~khi:r.khi ~tlo:r.tlo ~thi:r.thi)
          rects)
  in
  let agree = naive = ours in
  Printf.printf "query batch (%d queries at QRS=%.4f): results agree: %b\n" n qrs agree;
  Printf.printf "  MVBT naive : %d I/Os, %.4f s estimated\n" (mn.reads + mn.writes)
    mn.estimated_s;
  Printf.printf "  2-MVSBT    : %d I/Os, %.4f s estimated\n" (mo.reads + mo.writes)
    mo.estimated_s;
  Printf.printf "  speedup    : %.1fx\n" (mn.estimated_s /. mo.estimated_s);
  if not agree then exit 1

let compare_cmd =
  let qrs =
    let doc = "Query rectangle size as an area fraction." in
    Arg.(value & opt float 0.01 & info [ "qrs" ] ~doc)
  in
  let n =
    let doc = "Number of queries in the batch." in
    Arg.(value & opt int 100 & info [ "queries" ] ~doc)
  in
  Cmd.v
    (Cmd.info "compare"
       ~doc:"Build both the 2-MVSBT and the MVBT baseline and race a query batch")
    Term.(const compare_cmd_impl $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ qrs $ n)

(* --- checkpoint / recover -------------------------------------------------------- *)

let engine_max_key_term =
  let doc = "Key space upper bound the engine was created with." in
  Arg.(value & opt int 1_000_000_000 & info [ "max-key" ] ~doc)

let engine_buffer_term =
  let doc = "LRU buffer pool capacity in pages." in
  Arg.(value & opt int 64 & info [ "buffer" ] ~doc)

let checkpoint_impl verbosity max_key buffer wal sync_policy store =
  setup_logs verbosity;
  let eng =
    Durable.open_ ~pool_capacity:buffer ~sync_policy ~store ~max_key ~path:wal ()
  in
  Printf.printf "recovered: %d WAL records replayed on open\n" (Durable.replayed_on_open eng);
  (match Durable.checkpoint eng with
  | Ok () ->
      Printf.printf
        "checkpoint committed under %s.ckpt-<gen>.{lkst,lklt,meta}; log truncated\n" wal
  | Error e ->
      Format.printf "checkpoint failed: %a (previous checkpoint and WAL intact)@."
        Storage.Storage_error.pp e;
      report_durable eng;
      Durable.close eng;
      exit 1);
  report_durable eng;
  Durable.close eng

let checkpoint_cmd =
  Cmd.v
    (Cmd.info "checkpoint"
       ~doc:"Recover a durable warehouse, snapshot it, and truncate its log")
    Term.(const checkpoint_impl $ verbosity $ engine_max_key_term $ engine_buffer_term
          $ wal_req_term $ sync_policy_term $ store_term)

let recover_impl verbosity max_key buffer wal sync_policy store rect_opt stats_json =
  setup_logs verbosity;
  let eng =
    Durable.open_ ~pool_capacity:buffer ~sync_policy ~store ~max_key ~path:wal ()
  in
  let rta = Durable.warehouse eng in
  Rta.check_invariants rta;
  if stats_json then begin
    let r = Durable.recovery_report eng in
    print_json
      (Telemetry.Json.Obj
         [ ("mode", Telemetry.Json.Str "recover");
           ("replayed", Telemetry.Json.Int r.Durable.replayed);
           ("dropped_bytes", Telemetry.Json.Int r.Durable.dropped_bytes);
           ( "checkpoint_gen",
             match r.Durable.checkpoint_gen with
             | Some g -> Telemetry.Json.Int g
             | None -> Telemetry.Json.Null );
           ("updates", Telemetry.Json.Int (Rta.n_updates rta));
           ("pages", Telemetry.Json.Int (Rta.page_count rta));
           ("health", Telemetry.Json.Str (health_string (Durable.health eng)));
           ("io", io_json (Storage.Io_stats.snapshot (Durable.io_stats eng)));
           ("invariants", Telemetry.Json.Str "ok") ])
  end
  else begin
    Format.printf "recovered %s: %a@." wal Durable.pp_recovery_report
      (Durable.recovery_report eng);
    Printf.printf "  invariants: ok\n";
    report_durable eng
  end;
  (match rect_opt with
  | Some (klo, khi, tlo, thi) ->
      let sum, count = Durable.sum_count eng ~klo ~khi ~tlo ~thi in
      if not stats_json then
        Printf.printf "[%d, %d) x [%d, %d): SUM=%d COUNT=%d AVG=%s\n" klo khi tlo thi sum
          count
          (if count = 0 then "-"
           else Printf.sprintf "%.3f" (float_of_int sum /. float_of_int count))
  | None -> ());
  Durable.close eng

let recover_cmd =
  let rect =
    let doc = "Sanity query rectangle KLO,KHI,TLO,THI to run after recovery." in
    Arg.(value & opt (some (t4 int int int int)) None & info [ "rect" ] ~doc)
  in
  Cmd.v
    (Cmd.info "recover"
       ~doc:"Recover a durable warehouse from its checkpoint and log and report its state")
    Term.(const recover_impl $ verbosity $ engine_max_key_term $ engine_buffer_term
          $ wal_req_term $ sync_policy_term $ store_term $ rect $ stats_json_term)

(* --- vacuum ----------------------------------------------------------------------- *)

let vacuum_impl verbosity max_key buffer wal sync_policy store horizon
    max_pages_per_step crash_after_steps stats_json =
  setup_logs verbosity;
  let eng =
    Durable.open_ ~pool_capacity:buffer ~sync_policy ~store ~max_key ~path:wal ()
  in
  let rta = Durable.warehouse eng in
  let horizon =
    match horizon with Some h -> h | None -> max (Durable.horizon eng) (Rta.now rta / 2)
  in
  (match crash_after_steps with
  | None -> ()
  | Some n -> (
      (* Test hook for the CI kill drill: log the horizon and the first
         [n] chunks, then die without closing or truncating anything —
         the moral equivalent of kill -9 mid-vacuum.  A later [recover]
         or [vacuum] must converge from whatever the WAL holds. *)
      match Durable.vacuum_begin eng ~horizon with
      | Error e ->
          Format.eprintf "vacuum-begin failed: %a@." Storage.Storage_error.pp e;
          exit 1
      | Ok () ->
          let chunks = Rta.vacuum_plan ~max_pages:max_pages_per_step rta in
          let applied = ref 0 in
          (try
             List.iter
               (fun chunk ->
                 if !applied >= n then raise Exit;
                 match Durable.vacuum_chunk eng chunk with
                 | Ok _ -> incr applied
                 | Error e ->
                     Format.eprintf "vacuum chunk failed: %a@." Storage.Storage_error.pp e;
                     raise Exit)
               chunks
           with Exit -> ());
          Printf.eprintf "crash-after-steps: dying after %d of %d chunks\n%!" !applied
            (List.length chunks);
          Unix._exit 137));
  (match Durable.vacuum ~max_pages_per_step eng ~horizon with
  | Error e ->
      Format.eprintf "vacuum failed: %a@." Storage.Storage_error.pp e;
      Durable.close eng;
      exit 1
  | Ok r ->
      let p = r.Rta.v_progress in
      if stats_json then
        print_json
          (Telemetry.Json.Obj
             [ ("mode", Telemetry.Json.Str "vacuum");
               ("horizon", Telemetry.Json.Int r.Rta.v_horizon);
               ("steps", Telemetry.Json.Int r.Rta.v_steps);
               ("pages_freed", Telemetry.Json.Int p.Rta.pages_freed);
               ("pages_pruned", Telemetry.Json.Int p.Rta.pages_pruned);
               ("records_dropped", Telemetry.Json.Int p.Rta.records_dropped);
               ("updates", Telemetry.Json.Int (Rta.n_updates rta));
               ("pages", Telemetry.Json.Int (Rta.page_count rta));
               ("health", Telemetry.Json.Str (health_string (Durable.health eng)));
               ("io", io_json (Storage.Io_stats.snapshot (Durable.io_stats eng))) ])
      else begin
        Printf.printf
          "vacuumed %s to horizon %d: %d chunks, %d pages freed, %d pruned, %d records \
           dropped\n"
          wal r.Rta.v_horizon r.Rta.v_steps p.Rta.pages_freed p.Rta.pages_pruned
          p.Rta.records_dropped;
        report_durable eng
      end);
  Durable.close eng

let vacuum_cmd =
  let horizon =
    let doc =
      "Retention horizon: versions whose lifetime ended at or before this instant are \
       reclaimed, and queries reaching below it are refused.  Defaults to half the \
       store's current time."
    in
    Arg.(value & opt (some int) None & info [ "horizon" ] ~doc ~docv:"T")
  in
  let max_pages_per_step =
    let doc = "Pages reclaimed per WAL-logged vacuum chunk (bounds pause length)." in
    Arg.(value & opt int 128 & info [ "max-pages-per-step" ] ~doc ~docv:"N")
  in
  let crash_after_steps =
    let doc =
      "Fault-injection hook: apply N vacuum chunks, then exit abruptly (137) without \
       closing the store, simulating kill -9 mid-vacuum."
    in
    Arg.(value & opt (some int) None & info [ "crash-after-steps" ] ~doc ~docv:"N")
  in
  Cmd.v
    (Cmd.info "vacuum"
       ~doc:
         "Recover a durable warehouse, raise its retention horizon, and reclaim dead \
          pages (crash-safe: every step is WAL-logged before it is applied)")
    Term.(const vacuum_impl $ verbosity $ engine_max_key_term $ engine_buffer_term
          $ wal_req_term $ sync_policy_term $ store_term $ horizon $ max_pages_per_step
          $ crash_after_steps $ stats_json_term)

(* --- scrub ------------------------------------------------------------------------ *)

(* A small deterministic workload for [--demo]: enough churn to spread
   records over a few dozen pages of both MVSBTs. *)
let demo_updates ~n ~seed =
  let rng = Random.State.make [| seed; 0xdead |] in
  let alive = Hashtbl.create 64 in
  let now = ref 0 in
  let max_key = 256 in
  List.init n (fun _ ->
      now := !now + Random.State.int rng 3;
      let key = Random.State.int rng max_key in
      if Hashtbl.length alive = max_key
         || (Hashtbl.mem alive key && Random.State.bool rng) then begin
        let key = ref key in
        while not (Hashtbl.mem alive !key) do
          key := (!key + 1) mod max_key
        done;
        Hashtbl.remove alive !key;
        `Delete (!key, !now)
      end
      else begin
        let key = ref key in
        while Hashtbl.mem alive !key do
          key := (!key + 1) mod max_key
        done;
        Hashtbl.add alive !key ();
        `Insert (!key, 1 + Random.State.int rng 1000, !now)
      end)

let build_demo_warehouse ~page_size ~store ~n ~seed ~path =
  let rta = Rta.create_durable ~page_size ~store ~max_key:256 ~path () in
  List.iter
    (function
      | `Insert (key, value, at) -> Rta.insert rta ~key ~value ~at
      | `Delete (key, at) -> Rta.delete rta ~key ~at)
    (demo_updates ~n ~seed);
  Rta.flush rta;
  rta

let run_scrub ~quiet ~stats ~page_size ~store ?repair_from ~path () =
  let report = Rta.scrub ~stats ~page_size ~store ?repair_from ~path () in
  if not quiet then Format.printf "scrub %s: %a@." path Rta.pp_scrub_report report;
  report

let scrub_pages_json pages =
  Telemetry.Json.List
    (List.map
       (fun (side, pid) ->
         Telemetry.Json.Obj
           [ ("side", Telemetry.Json.Str (Format.asprintf "%a" Rta.pp_scrub_side side));
             ("page", Telemetry.Json.Int (Storage.Page_id.to_int pid)) ])
       pages)

let scrub_impl verbosity page_size wal store inject seed repair_from demo stats_json =
  setup_logs verbosity;
  (* Scrub works on page files; there is nothing to scrub in a heap, so
     the default [memory] means "the ordinary file backend" here. *)
  let store =
    match store with Storage.Store_kind.Memory -> Storage.Store_kind.File | s -> s
  in
  let stats = Storage.Io_stats.create () in
  let repair_from =
    match (repair_from, demo) with
    | Some p, _ -> Some (Rta.reopen_durable ~page_size ~store ~path:p ())
    | None, Some n ->
        (* Self-contained round trip: build the warehouse and a matching
           reference, corrupt the former, repair from the latter. *)
        let _target = build_demo_warehouse ~page_size ~store ~n ~seed ~path:wal in
        if not stats_json then
          Printf.printf "demo: built %d-update warehouse at %s (+ reference at %s.ref)\n" n
            wal wal;
        Some (build_demo_warehouse ~page_size ~store ~n ~seed ~path:(wal ^ ".ref"))
    | None, None -> None
  in
  (match inject with
  | Some flips when flips > 0 ->
      let hits = Rta.inject_bit_flips ~page_size ~store ~path:wal ~seed ~flips () in
      if not stats_json then
        Printf.printf "injected single-bit flips into %d pages\n" (List.length hits)
  | _ -> ());
  let report =
    run_scrub ~quiet:stats_json ~stats ~page_size ~store ?repair_from ~path:wal ()
  in
  let final =
    if report.Rta.repaired <> [] then
      run_scrub ~quiet:stats_json ~stats ~page_size ~store ~path:wal ()
    else report
  in
  let ok = Rta.scrub_clean final || final.Rta.corrupt = final.Rta.repaired in
  if stats_json then
    print_json
      (Telemetry.Json.Obj
         [ ("mode", Telemetry.Json.Str "scrub");
           ("pages_checked", Telemetry.Json.Int report.Rta.pages_checked);
           ("corrupt", scrub_pages_json report.Rta.corrupt);
           ("repaired", scrub_pages_json report.Rta.repaired);
           ("irreparable", scrub_pages_json report.Rta.irreparable);
           ("clean_after_repair", Telemetry.Json.Bool (Rta.scrub_clean final));
           ("ok", Telemetry.Json.Bool ok);
           ( "health",
             Telemetry.Json.Str
               (health_string (if ok then Durable.Healthy else Durable.Degraded)) );
           ("io", io_json (Storage.Io_stats.snapshot stats)) ])
  else Format.printf "  io: %a@." Storage.Io_stats.pp stats;
  if not ok then exit 1

let scrub_cmd =
  let page_size =
    let doc = "Page size of the warehouse's page files." in
    Arg.(value & opt int 4096 & info [ "page-size" ] ~doc)
  in
  let path =
    let doc =
      "Durable warehouse path prefix (page files at PREFIX.lkst.pages / \
       PREFIX.lklt.pages, sidecar at PREFIX.rta.meta)."
    in
    Arg.(required & opt (some string) None & info [ "path" ] ~doc ~docv:"PREFIX")
  in
  let inject =
    let doc = "First flip one random bit in each of N distinct pages (testing/demo)." in
    Arg.(value & opt (some int) None & info [ "inject-flips" ] ~doc ~docv:"N")
  in
  let seed =
    let doc = "Random seed for --inject-flips." in
    Arg.(value & opt int 7 & info [ "seed" ] ~doc)
  in
  let repair_from =
    let doc =
      "Reopen the durable warehouse at this prefix as the repair reference (it must \
       have gone through the same update sequence)."
    in
    Arg.(value & opt (some string) None & info [ "repair-from" ] ~doc ~docv:"PREFIX")
  in
  let demo =
    let doc =
      "Build a fresh N-update demo warehouse at the prefix (plus a matching reference \
       at PREFIX.ref) before scrubbing — a self-contained corruption round trip with \
       --inject-flips."
    in
    Arg.(value & opt (some int) None & info [ "demo" ] ~doc ~docv:"N")
  in
  Cmd.v
    (Cmd.info "scrub"
       ~doc:
         "Verify the per-page checksums of a durable warehouse and repair corrupt pages \
          from a reference (exits 1 if corruption remains)")
    Term.(const scrub_impl $ verbosity $ page_size $ path $ store_term $ inject $ seed
          $ repair_from $ demo $ stats_json_term)

(* --- crash-matrix ----------------------------------------------------------------- *)

let crash_matrix_impl verbosity updates max_key checkpoint_every sync_policy store seed
    limit smoke =
  setup_logs verbosity;
  let updates, limit =
    if smoke then (min updates 60, Some (match limit with Some l -> l | None -> 80))
    else (updates, limit)
  in
  let trace =
    Faultsim.Harness.run_trace ~sync_policy ~checkpoint_every ~store ~seed ~updates
      ~max_key ()
  in
  let report = Faultsim.Harness.check ?limit trace in
  Format.printf "crash matrix (%d updates, checkpoint every %d, %a, %a store): %a@."
    updates checkpoint_every Wal.pp_sync_policy sync_policy Storage.Store_kind.pp store
    Faultsim.Harness.pp_report report;
  if report.Faultsim.Harness.violations <> [] then exit 1

let crash_matrix_cmd =
  let updates =
    let doc = "Updates in the generated trace." in
    Arg.(value & opt int 120 & info [ "updates" ] ~doc)
  in
  let max_key =
    let doc = "Key space of the generated trace." in
    Arg.(value & opt int 24 & info [ "max-key" ] ~doc)
  in
  let checkpoint_every =
    let doc = "Checkpoint automatically every N updates while generating the trace." in
    Arg.(value & opt int 40 & info [ "checkpoint-every" ] ~doc)
  in
  let seed =
    let doc = "Random seed for the trace." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let limit =
    let doc = "Check at most N crash images (stride-sampled); default checks all." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~doc ~docv:"N")
  in
  let smoke =
    let doc = "Bounded CI run: caps the trace at 60 updates and the matrix at 80 images." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  Cmd.v
    (Cmd.info "crash-matrix"
       ~doc:
         "Enumerate every legal post-crash disk image of a workload trace, run recovery \
          on each, and verify the recovered state (exits 1 on any violation)")
    Term.(const crash_matrix_impl $ verbosity $ updates $ max_key $ checkpoint_every
          $ sync_policy_term $ store_term $ seed $ limit $ smoke)

(* --- vacuum-matrix ---------------------------------------------------------------- *)

let vacuum_matrix_impl verbosity updates max_key checkpoint_every sync_policy store seed
    vacuum_step_pages limit smoke =
  setup_logs verbosity;
  let updates, limit =
    if smoke then (min updates 80, Some (match limit with Some l -> l | None -> 120))
    else (updates, limit)
  in
  let trace =
    Faultsim.Vacuum_matrix.run_trace ~sync_policy ~checkpoint_every ~store ~seed ~updates
      ~vacuum_step_pages ~max_key ()
  in
  let report = Faultsim.Vacuum_matrix.check ?limit trace in
  Format.printf
    "vacuum matrix (%d updates, %d-page chunks, checkpoint every %d, %a, %a store): %a@."
    updates vacuum_step_pages checkpoint_every Wal.pp_sync_policy sync_policy
    Storage.Store_kind.pp store Faultsim.Vacuum_matrix.pp_report report;
  if report.Faultsim.Vacuum_matrix.violations <> [] then exit 1

let vacuum_matrix_cmd =
  let updates =
    let doc = "Updates in the generated churn trace." in
    Arg.(value & opt int 110 & info [ "updates" ] ~doc)
  in
  let max_key =
    let doc = "Key space of the generated trace." in
    Arg.(value & opt int 24 & info [ "max-key" ] ~doc)
  in
  let checkpoint_every =
    let doc = "Checkpoint automatically every N records while generating the trace." in
    Arg.(value & opt int 40 & info [ "checkpoint-every" ] ~doc)
  in
  let seed =
    let doc = "Random seed for the trace." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let vacuum_step_pages =
    let doc = "Pages per vacuum chunk in the trace (smaller = more kill boundaries)." in
    Arg.(value & opt int 4 & info [ "vacuum-step-pages" ] ~doc ~docv:"N")
  in
  let limit =
    let doc = "Check at most N crash images (stride-sampled); default checks all." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~doc ~docv:"N")
  in
  let smoke =
    let doc =
      "Bounded CI run: caps the trace at 80 updates and the matrix at 120 images."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  Cmd.v
    (Cmd.info "vacuum-matrix"
       ~doc:
         "Kill a churn-plus-vacuum trace at every compaction boundary, run recovery on \
          each distinct post-crash image, and verify horizon exactness, invariants, \
          oracle queries, and vacuum convergence (exits 1 on any violation)")
    Term.(const vacuum_matrix_impl $ verbosity $ updates $ max_key $ checkpoint_every
          $ sync_policy_term $ store_term $ seed $ vacuum_step_pages $ limit $ smoke)

(* --- errsweep --------------------------------------------------------------------- *)

let err_class_conv =
  let parse s =
    match Storage.Vfs.Inject.class_of_string s with
    | Some c -> Ok c
    | None -> Error (`Msg (Printf.sprintf "unknown errno class %S (enospc|eio|eintr|short)" s))
  in
  Arg.conv (parse, Storage.Vfs.Inject.pp_class)

let errsweep_impl verbosity updates max_key sync_policy checkpoint_at checkpoint_every seed
    query_count classes limit smoke =
  setup_logs verbosity;
  let spec =
    { Faultsim.Errsweep.updates; max_key; sync_policy; checkpoint_at; checkpoint_every;
      seed; query_count }
  in
  let spec, limit =
    if smoke then
      ( { spec with Faultsim.Errsweep.updates = min updates 60; checkpoint_at = 30 },
        Some (match limit with Some l -> l | None -> 60) )
    else (spec, limit)
  in
  let classes = match classes with [] -> Storage.Vfs.Inject.all_classes | cs -> cs in
  let report = Faultsim.Errsweep.run ~classes ?limit_per_class:limit spec in
  Format.printf "error sweep (%d updates, checkpoint at %d, %a, classes:%a): %a@."
    spec.Faultsim.Errsweep.updates spec.Faultsim.Errsweep.checkpoint_at Wal.pp_sync_policy
    spec.Faultsim.Errsweep.sync_policy
    (fun ppf cs ->
      List.iter (fun c -> Format.fprintf ppf " %a" Storage.Vfs.Inject.pp_class c) cs)
    classes Faultsim.Errsweep.pp_report report;
  if not (Faultsim.Errsweep.clean report) then exit 1

let errsweep_cmd =
  let updates =
    let doc = "Updates in the scripted trace." in
    Arg.(value & opt int 120 & info [ "updates" ] ~doc)
  in
  let max_key =
    let doc = "Key space of the scripted trace." in
    Arg.(value & opt int 24 & info [ "max-key" ] ~doc)
  in
  let checkpoint_at =
    let doc = "Take a manual checkpoint after N scripted updates (0 = never)." in
    Arg.(value & opt int 60 & info [ "checkpoint-at" ] ~doc)
  in
  let seed =
    let doc = "Random seed for the trace." in
    Arg.(value & opt int 1 & info [ "seed" ] ~doc)
  in
  let query_count =
    let doc = "Query panel size checked against the oracle after each run." in
    Arg.(value & opt int 12 & info [ "queries" ] ~doc)
  in
  let classes =
    let doc = "Errno class to sweep (repeatable); default sweeps all four." in
    Arg.(value & opt_all err_class_conv [] & info [ "class" ] ~doc ~docv:"CLASS")
  in
  let limit =
    let doc = "Sweep at most N evenly spaced fault points per class; default sweeps all." in
    Arg.(value & opt (some int) None & info [ "limit-per-class" ] ~doc ~docv:"N")
  in
  let smoke =
    let doc = "Bounded CI run: caps the trace at 60 updates and 60 points per class." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  Cmd.v
    (Cmd.info "errsweep"
       ~doc:
         "Sweep single I/O-error injections (ENOSPC/EIO/EINTR/short transfers) over every \
          syscall of a workload trace and verify typed-error surfacing, oracle-equal \
          answers, read-only degradation, and recovery (exits 1 on any violation)")
    Term.(const errsweep_impl $ verbosity $ updates $ max_key $ sync_policy_term
          $ checkpoint_at $ checkpoint_every_term $ seed $ query_count $ classes $ limit
          $ smoke)

(* --- trace / metrics / profile (telemetry) ---------------------------------------- *)

module Tracer = Telemetry.Tracer

(* Build a warehouse with an enabled tracer wired through the whole stack
   and the same Io_stats underneath, so spans carry real I/O deltas. *)
let build_with_tracer ~spec ~config ~buffer ~input ~sink =
  let stats = Storage.Io_stats.create () in
  let tracer = Tracer.create ~stats ~debug:true sink in
  let rta =
    Rta.create ~config ~pool_capacity:buffer ~stats ~telemetry:tracer
      ~max_key:spec.Workload.Generator.max_key ()
  in
  let events = events_of ~spec ~input in
  Workload.Trace.replay events
    ~insert:(fun ~key ~value ~at -> Rta.insert rta ~key ~value ~at)
    ~delete:(fun ~key ~at -> Rta.delete rta ~key ~at);
  (rta, stats)

let query_rects ~spec ~n ~qrs =
  let rng = Workload.Rng.create ~seed:(spec.Workload.Generator.seed + 11) in
  Workload.Query_gen.batch rng ~n ~max_key:spec.Workload.Generator.max_key
    ~max_time:spec.Workload.Generator.max_time ~qrs ~r_over_i:1.0

let run_query_batch rta rects =
  List.iter
    (fun (r : Workload.Query_gen.rect) ->
      ignore (Rta.sum_count rta ~klo:r.klo ~khi:r.khi ~tlo:r.tlo ~thi:r.thi))
    rects

(* Ring capacity large enough that a full build + query sweep is retained. *)
let ring_capacity ~spec ~n_queries =
  max 65_536 (8 * (spec.Workload.Generator.n_records + n_queries))

let queries_term =
  let doc = "Number of random RTA queries to run after the build." in
  Arg.(value & opt int 100 & info [ "queries" ] ~doc)

let qrs_term =
  let doc = "Query rectangle size as an area fraction." in
  Arg.(value & opt float 0.01 & info [ "qrs" ] ~doc)

let with_out_channel out f =
  match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) @@ fun () -> f oc
  | None -> f stdout

let trace_impl verbosity spec (config, buffer) input n_queries qrs chrome out =
  setup_logs verbosity;
  let rects = query_rects ~spec ~n:n_queries ~qrs in
  if chrome then begin
    (* Collect in memory, render the whole trace_event document at the end. *)
    let mem = Tracer.Memory.create ~capacity:(ring_capacity ~spec ~n_queries) () in
    let rta, _ = build_with_tracer ~spec ~config ~buffer ~input ~sink:(Tracer.Memory.sink mem) in
    run_query_batch rta rects;
    let doc = Tracer.chrome_trace ~events:(Tracer.Memory.events mem) (Tracer.Memory.spans mem) in
    with_out_channel out (fun oc ->
        output_string oc (Telemetry.Json.to_string doc);
        output_char oc '\n');
    Logs.app (fun l ->
        l "chrome trace: %d spans, %d events%s — open in about://tracing or ui.perfetto.dev"
          (List.length (Tracer.Memory.spans mem))
          (List.length (Tracer.Memory.events mem))
          (if Tracer.Memory.dropped mem > 0 then
             Printf.sprintf " (%d dropped)" (Tracer.Memory.dropped mem)
           else ""))
  end
  else
    (* JSONL streams as spans complete — no ring, nothing dropped. *)
    with_out_channel out @@ fun oc ->
    let n = ref 0 in
    let sink =
      Tracer.jsonl_sink (fun line ->
          incr n;
          output_string oc line;
          output_char oc '\n')
    in
    let rta, _ = build_with_tracer ~spec ~config ~buffer ~input ~sink in
    run_query_batch rta rects;
    Logs.app (fun l -> l "jsonl trace: %d lines" !n)

let trace_cmd =
  let chrome =
    let doc =
      "Emit one Chrome trace_event JSON document (load in about://tracing or \
       https://ui.perfetto.dev) instead of streaming JSONL span lines."
    in
    Arg.(value & flag & info [ "chrome" ] ~doc)
  in
  let out =
    let doc = "Output file (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:
         "Build a workload and a query sweep with tracing enabled and write the span \
          stream (JSONL, or a Chrome trace with --chrome)")
    Term.(const trace_impl $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ queries_term $ qrs_term $ chrome $ out)

let health_gauge_value = function
  | Durable.Healthy -> 0.
  | Durable.Degraded -> 1.
  | Durable.Read_only -> 2.

let populate_registry reg ~stats ~spans rta =
  Telemetry.Metrics.absorb_io_stats reg (Storage.Io_stats.snapshot stats);
  Telemetry.Metrics.observe_spans reg spans;
  let gauge name help v =
    Telemetry.Metrics.set_gauge (Telemetry.Metrics.gauge reg ~help name) v
  in
  gauge "rta_pages" "Live pages over both MVSBTs." (float_of_int (Rta.page_count rta));
  gauge "rta_tree_height" "Height of the taller current SB-tree."
    (float_of_int (Rta.height rta));
  gauge "rta_version_chain_roots"
    "SB-tree roots over both MVSBTs (length of the root* version chains)."
    (float_of_int (Rta.root_count rta));
  gauge "rta_alive_tuples" "Currently alive tuples in the base table."
    (float_of_int (Rta.alive_count rta));
  Telemetry.Metrics.set_counter
    (Telemetry.Metrics.counter reg ~help:"Total inserts + deletes applied." "rta_updates_total")
    (Rta.n_updates rta);
  Telemetry.Metrics.set_counter
    (Telemetry.Metrics.counter reg
       ~help:"Cumulative logical page touches over both MVSBTs (cache hits included)."
       "rta_page_touches_total")
    (Rta.page_touches rta)

let metrics_impl verbosity spec (config, buffer) input n_queries qrs wal sync_policy
    store as_json =
  setup_logs verbosity;
  let mem = Tracer.Memory.create ~capacity:(ring_capacity ~spec ~n_queries) () in
  let reg = Telemetry.Metrics.create () in
  let rects = query_rects ~spec ~n:n_queries ~qrs in
  let touch_hist =
    Telemetry.Metrics.histogram reg
      ~help:"Logical page touches per RTA range query (six point queries)."
      "query_page_touches"
  in
  let run_queries rta =
    List.iter
      (fun (r : Workload.Query_gen.rect) ->
        let t0 = Rta.page_touches rta in
        ignore (Rta.sum_count rta ~klo:r.klo ~khi:r.khi ~tlo:r.tlo ~thi:r.thi);
        Telemetry.Metrics.observe touch_hist (float_of_int (Rta.page_touches rta - t0)))
      rects
  in
  (match wal with
  | None ->
      let rta, stats = build_with_tracer ~spec ~config ~buffer ~input ~sink:(Tracer.Memory.sink mem) in
      run_queries rta;
      populate_registry reg ~stats ~spans:(Tracer.Memory.spans mem) rta
  | Some path ->
      (* Through the durable engine: WAL and health metrics exist here. *)
      let stats = Storage.Io_stats.create () in
      let tracer = Tracer.create ~stats ~debug:true (Tracer.Memory.sink mem) in
      let eng =
        Durable.open_ ~config ~pool_capacity:buffer ~stats ~sync_policy ~store
          ~telemetry:tracer ~max_key:spec.Workload.Generator.max_key ~path ()
      in
      let ok = Storage.Storage_error.ok_exn in
      Workload.Trace.replay (events_of ~spec ~input)
        ~insert:(fun ~key ~value ~at -> ok (Durable.insert eng ~key ~value ~at))
        ~delete:(fun ~key ~at -> ok (Durable.delete eng ~key ~at));
      let rta = Durable.warehouse eng in
      run_queries rta;
      populate_registry reg ~stats ~spans:(Tracer.Memory.spans mem) rta;
      let wal_st = Durable.wal_stats eng in
      Telemetry.Metrics.set_counter
        (Telemetry.Metrics.counter reg ~help:"Bytes appended to the write-ahead log."
           "wal_bytes_total")
        (Wal.Stats.bytes wal_st);
      Telemetry.Metrics.set_counter
        (Telemetry.Metrics.counter reg ~help:"Records appended to the write-ahead log."
           "wal_appends_total")
        (Wal.Stats.appends wal_st);
      Telemetry.Metrics.set_gauge
        (Telemetry.Metrics.gauge reg
           ~help:"Durable-engine health (0 healthy, 1 degraded, 2 read-only)."
           "durable_health_state")
        (health_gauge_value (Durable.health eng));
      Durable.close eng);
  if as_json then print_json (Telemetry.Metrics.to_json reg)
  else print_string (Telemetry.Metrics.to_prometheus reg)

let metrics_cmd =
  let as_json =
    let doc = "Emit the registry as JSON instead of Prometheus text exposition." in
    Arg.(value & flag & info [ "json" ] ~doc)
  in
  Cmd.v
    (Cmd.info "metrics"
       ~doc:
         "Build a workload and a query sweep with telemetry enabled and dump the metrics \
          registry (Prometheus text, or JSON with --json)")
    Term.(const metrics_impl $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ queries_term $ qrs_term $ wal_opt_term $ sync_policy_term $ store_term
          $ as_json)

(* Re-parse emitted trace artifacts with the library's own JSON parser, so
   CI catches an encoder regression the moment it happens. *)
let validate_jsonl path =
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
  let rec go n =
    match input_line ic with
    | exception End_of_file -> Ok n
    | "" -> go n
    | line -> (
        match Telemetry.Json.of_string line with
        | Ok _ -> go (n + 1)
        | Error e -> Error (Printf.sprintf "%s line %d: %s" path (n + 1) e))
  in
  go 0

let validate_chrome path ~spans =
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let buf = really_input_string ic len in
  close_in ic;
  match Telemetry.Json.of_string buf with
  | Error e -> Error (Printf.sprintf "%s: %s" path e)
  | Ok doc -> (
      match Telemetry.Json.member "traceEvents" doc with
      | Some (Telemetry.Json.List evs) when List.length evs >= spans ->
          Ok (List.length evs)
      | Some (Telemetry.Json.List evs) ->
          Error
            (Printf.sprintf "%s: %d traceEvents for %d spans" path (List.length evs) spans)
      | _ -> Error (Printf.sprintf "%s: no traceEvents array" path))

let profile_impl verbosity spec (config, buffer) input n_queries qrs store slack worst
    smoke trace_out =
  setup_logs verbosity;
  (* Smoke mode is the bounded CI entry point: small warehouse, tracing
     on, trace artifacts written and re-parsed, zero violations asserted. *)
  let spec, n_queries =
    if smoke then
      ( { spec with Workload.Generator.n_records = min spec.Workload.Generator.n_records 2_000 },
        min n_queries 200 )
    else (spec, n_queries)
  in
  let trace_out =
    match trace_out with
    | Some _ -> trace_out
    | None when smoke -> Some (Filename.temp_file "rta-profile" "")
    | None -> None
  in
  let mem = Tracer.Memory.create ~capacity:(ring_capacity ~spec ~n_queries) () in
  let stats = Storage.Io_stats.create () in
  let tracer = Tracer.create ~stats ~debug:true (Tracer.Memory.sink mem) in
  let rta =
    match (store : Storage.Store_kind.t) with
    | Memory ->
        Rta.create ~config ~pool_capacity:buffer ~stats ~telemetry:tracer
          ~max_key:spec.Workload.Generator.max_key ()
    | (File | Mmap) as store ->
        (* The envelopes count logical page touches, which are backend
           independent — running them over a real page store proves the
           zero-copy path doesn't change what the tree visits. *)
        let path = Filename.temp_file "rta-profile-store" "" in
        let page_size =
          (max 4096 (Rta.min_page_size config) + 4095) / 4096 * 4096
        in
        Rta.create_durable ~config ~pool_capacity:buffer ~stats ~telemetry:tracer ~store
          ~page_size ~max_key:spec.Workload.Generator.max_key ~path ()
  in
  let checker = Telemetry.Bound_check.create ~slack ~worst ~b:config.Mvsbt.b () in
  (* K for the update envelope is the number of distinct keys ever seen
     (the paper's key-space parameter); n for queries is the update count. *)
  let distinct = Hashtbl.create 1024 in
  let profiled op scale f =
    let t0 = Rta.page_touches rta in
    f ();
    Telemetry.Bound_check.record checker ~op ~scale ~touches:(Rta.page_touches rta - t0)
  in
  Workload.Trace.replay (events_of ~spec ~input)
    ~insert:(fun ~key ~value ~at ->
      Hashtbl.replace distinct key ();
      profiled Telemetry.Bound_check.Insert (Hashtbl.length distinct) (fun () ->
          Rta.insert rta ~key ~value ~at))
    ~delete:(fun ~key ~at ->
      profiled Telemetry.Bound_check.Delete (Hashtbl.length distinct) (fun () ->
          Rta.delete rta ~key ~at));
  let n = Rta.n_updates rta in
  List.iter
    (fun (r : Workload.Query_gen.rect) ->
      profiled Telemetry.Bound_check.Range_query n (fun () ->
          ignore (Rta.sum_count rta ~klo:r.klo ~khi:r.khi ~tlo:r.tlo ~thi:r.thi)))
    (query_rects ~spec ~n:n_queries ~qrs);
  let report = Telemetry.Bound_check.report checker in
  Format.printf "%a@." Telemetry.Bound_check.pp_report report;
  let reg = Telemetry.Metrics.create () in
  Telemetry.Metrics.observe_spans reg (Tracer.Memory.spans mem);
  Format.printf "%a@." Telemetry.Metrics.pp_summary reg;
  let artifacts_ok =
    match trace_out with
    | None -> true
    | Some prefix -> (
        let spans = Tracer.Memory.spans mem in
        let events = Tracer.Memory.events mem in
        let jsonl_path = prefix ^ ".jsonl" in
        let chrome_path = prefix ^ ".trace.json" in
        let oc = open_out jsonl_path in
        List.iter
          (fun s ->
            output_string oc (Telemetry.Json.to_string (Tracer.span_to_json s));
            output_char oc '\n')
          spans;
        List.iter
          (fun e ->
            output_string oc (Telemetry.Json.to_string (Tracer.event_to_json e));
            output_char oc '\n')
          events;
        close_out oc;
        let oc = open_out chrome_path in
        output_string oc (Telemetry.Json.to_string (Tracer.chrome_trace ~events spans));
        output_char oc '\n';
        close_out oc;
        match (validate_jsonl jsonl_path, validate_chrome chrome_path ~spans:(List.length spans)) with
        | Ok lines, Ok evs ->
            Printf.printf "trace artifacts: %s (%d lines), %s (%d traceEvents) — both re-parse\n"
              jsonl_path lines chrome_path evs;
            true
        | Error e, _ | _, Error e ->
            prerr_endline ("trace artifact validation failed: " ^ e);
            false)
  in
  if not (Telemetry.Bound_check.clean report) then begin
    prerr_endline "bound check: VIOLATIONS (see report above)";
    exit 1
  end;
  if not artifacts_ok then exit 1;
  Printf.printf "bound check: clean (%d operations within the %g*(1+log_%d) envelope)\n"
    report.Telemetry.Bound_check.checked slack config.Mvsbt.b

let profile_cmd =
  let slack =
    let doc = "Constant factor c of the c*(1+log_b scale) envelope." in
    Arg.(value & opt float 4.0 & info [ "slack" ] ~doc)
  in
  let worst =
    let doc = "Number of worst offenders (by touches/bound ratio) to report." in
    Arg.(value & opt int 10 & info [ "worst" ] ~doc)
  in
  let smoke =
    let doc =
      "Bounded CI run: caps the workload at 2000 updates and 200 queries, writes the \
       JSONL and Chrome traces to a temp prefix, re-parses both, and exits 1 on any \
       envelope violation or artifact mismatch."
    in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let trace_out =
    let doc =
      "Also write the collected spans to PREFIX.jsonl and PREFIX.trace.json and \
       validate that both re-parse."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"PREFIX")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Profile per-operation page touches against the paper's O(log_b K) / O(log_b n) \
          envelopes and report worst offenders (exits 1 on violations)")
    Term.(const profile_impl $ verbosity $ spec_term $ mvsbt_config_term $ input_term
          $ queries_term $ qrs_term $ store_term $ slack $ worst $ smoke $ trace_out)

(* --- replica-matrix ---------------------------------------------------------------- *)

let replica_matrix_impl verbosity updates max_key batch sync_replicas seed limit smoke =
  setup_logs verbosity;
  let updates, limit =
    if smoke then (min updates 48, Some (match limit with Some l -> l | None -> 36))
    else (updates, limit)
  in
  let spec =
    { Faultsim.Failover.default_spec with
      Faultsim.Failover.seed; max_key; updates; batch; sync_replicas }
  in
  let report = Faultsim.Failover.run ?limit spec in
  Format.printf "failover matrix (%d updates in batches of %d, sync_replicas %d): %a@."
    updates batch sync_replicas Faultsim.Failover.pp_report report;
  if report.Faultsim.Failover.violations <> [] then exit 1

let replica_matrix_cmd =
  let updates =
    let doc = "Updates in the scripted replication workload." in
    Arg.(value & opt int 96 & info [ "updates" ] ~doc)
  in
  let max_key =
    let doc = "Key space of the scripted workload." in
    Arg.(value & opt int 24 & info [ "max-key" ] ~doc)
  in
  let batch =
    let doc = "Updates per replication round (rounds x 6 boundaries = kill points)." in
    Arg.(value & opt int 4 & info [ "batch" ] ~doc)
  in
  let sync_replicas =
    let doc = "Semi-sync ack quorum gating client acks (0 = leader fsync only)." in
    Arg.(value & opt int 1 & info [ "sync-replicas" ] ~doc)
  in
  let seed =
    let doc = "Random seed for the workload." in
    Arg.(value & opt int 11 & info [ "seed" ] ~doc)
  in
  let limit =
    let doc = "Check at most N kill points (stride-sampled); default checks all." in
    Arg.(value & opt (some int) None & info [ "limit" ] ~doc ~docv:"N")
  in
  let smoke =
    let doc = "Bounded CI run: caps the workload at 48 updates and 36 kill points." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  Cmd.v
    (Cmd.info "replica-matrix"
       ~doc:
         "Kill a simulated leader at every replication boundary (logged, synced, shipped, \
          received, replayed, acked), promote the most-advanced follower, and verify that \
          no client-acked write is ever lost, that stale-epoch frames are fenced, and \
          that every crash image of the deposed leader recovers oracle-equal (exits 1 on \
          any violation)")
    Term.(const replica_matrix_impl $ verbosity $ updates $ max_key $ batch
          $ sync_replicas $ seed $ limit $ smoke)

(* --- serve / netbench (network query service) ------------------------------------- *)

let socket_term =
  let doc = "Unix-domain socket path to serve on (or connect to)." in
  Arg.(value & opt (some string) None & info [ "socket" ] ~doc ~docv:"PATH")

let port_term =
  let doc = "TCP port on 127.0.0.1 to serve on (or connect to) instead of a Unix socket." in
  Arg.(value & opt (some int) None & info [ "port" ] ~doc ~docv:"PORT")

let need_endpoint who =
  Printf.eprintf "%s: pass --socket PATH or --port PORT\n" who;
  exit 2

(* "host:port" (or just ":port") means TCP; anything else is a Unix
   socket path. *)
let parse_upstream s =
  match String.rindex_opt s ':' with
  | Some i -> (
      match int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) with
      | Some port ->
          let host = if i = 0 then "127.0.0.1" else String.sub s 0 i in
          Replica.Follower.Tcp (host, port)
      | None -> Replica.Follower.Unix_sock s)
  | None -> Replica.Follower.Unix_sock s

let serve_impl verbosity max_key buffer wal socket port max_batch max_in_flight
    max_queue_depth checkpoint_every store shards readers sim_io_us follower_of
    sync_replicas heartbeat_ms failover_ms no_auto_promote trace_out trace_verbose
    trace_sample slow_ms slow_log metrics_port no_flight =
  setup_logs verbosity;
  if shards < 1 then begin
    prerr_endline "serve: --shards must be >= 1";
    exit 2
  end;
  if readers < 0 then begin
    prerr_endline "serve: --readers must be >= 0";
    exit 2
  end;
  let replication = follower_of <> None || sync_replicas > 0 in
  if replication && (shards > 1 || readers > 0) then begin
    prerr_endline "serve: replication requires --shards 1 --readers 0";
    exit 2
  end;
  let listen, where =
    match (socket, port) with
    | Some path, _ -> (Server.listen_unix ~path, "unix:" ^ path)
    | None, Some port ->
        let fd, port = Server.listen_tcp ~port () in
        (fd, Printf.sprintf "tcp:127.0.0.1:%d" port)
    | None, None -> need_endpoint "serve"
  in
  let config =
    { Server.default_config with max_batch; max_in_flight; max_queue_depth;
      sim_io_ns = int_of_float (sim_io_us *. 1000.) }
  in
  (* Observability plane.  The flight recorder (memory span ring) is on
     by default; --trace-out adds a streaming JSONL span file.  Either,
     or --slow-ms / --metrics-port, enables the per-request phase
     recorder.  --no-flight with no other flag leaves the tracer a noop
     and allocates nothing per request — the zero-overhead baseline. *)
  let flight =
    if no_flight then None
    else Some (Telemetry.Flight.create ~prefix:(wal ^ ".flight") ())
  in
  let trace_chan = Option.map open_out trace_out in
  (* Closed only at process exit: engine/cluster teardown still emits
     spans (final checkpoint, WAL close) after the serve loop returns,
     and they belong in the file. *)
  Option.iter (fun oc -> at_exit (fun () -> close_out_noerr oc)) trace_chan;
  let jsonl_of oc =
    Tracer.jsonl_sink (fun line ->
        output_string oc line;
        output_char oc '\n')
  in
  (* JSON serialisation costs two orders of magnitude more than recording
     a span, so the JSONL sink runs behind [Tracer.Async]: emitters (the
     server loop, shard writers/readers) enqueue raw records and a drain
     domain does the rendering and channel writes.  The flight ring needs
     no wrapper — [Memory.push] takes its own mutex and stores a record,
     cheap enough for the hot path. *)
  let trace_async = Option.map (fun oc -> Tracer.Async.create (jsonl_of oc)) trace_chan in
  let tracer =
    let debug = trace_verbose and sample = max 1 trace_sample in
    match (flight, trace_async) with
    | None, None -> Tracer.noop
    | Some f, None -> Tracer.create ~debug ~sample (Telemetry.Flight.sink f)
    | None, Some a -> Tracer.create ~debug ~sample (Tracer.Async.sink a)
    | Some f, Some a ->
        Tracer.create ~debug ~sample
          (Tracer.tee (Telemetry.Flight.sink f) (Tracer.Async.sink a))
  in
  (* Process-exit ordering (at_exit is LIFO, channel close registered
     first): drain+join the async sink, append thread-name metadata rows
     for whoever merges this file into a Chrome trace, then close the
     channel.  Engine/cluster teardown spans emitted before exit are
     still drained; the join guarantees no concurrent channel writes. *)
  Option.iter
    (fun a ->
      at_exit (fun () ->
          Tracer.Async.close a;
          match trace_chan with
          | None -> ()
          | Some oc ->
              (try
                 List.iter
                   (fun (pid, tid, name) ->
                     output_string oc
                       (Telemetry.Json.to_string
                          (Telemetry.Json.Obj
                             [ ("type", Telemetry.Json.Str "thread_name");
                               ("pid", Telemetry.Json.Int pid);
                               ("tid", Telemetry.Json.Int tid);
                               ("name", Telemetry.Json.Str name) ]));
                     output_char oc '\n')
                   (Tracer.thread_names ());
                 flush oc
               with Sys_error _ -> ())))
    trace_async;
  let observing =
    Option.is_some flight || Option.is_some trace_chan || Option.is_some slow_ms
    || Option.is_some metrics_port
  in
  Tracer.set_thread_name "server-loop";
  (* Post-[Server.create] wiring shared by the single-engine and sharded
     branches; returns the flight-dump poll hook and the shutdown hook. *)
  let setup_observe srv =
    if observing then begin
      let r = Telemetry.Phases.create (Server.metrics srv) in
      (match slow_ms with
      | None -> ()
      | Some ms ->
          let slow_path =
            match slow_log with Some p -> p | None -> wal ^ ".slow.jsonl"
          in
          let oc = open_out slow_path in
          (* Every offender is logged, but ring dumps are rate-limited:
             a burst of slow requests must not carpet the disk with
             near-identical flight files. *)
          let last_dump = ref neg_infinity in
          Telemetry.Phases.set_slow r ~slow_ms:ms (fun j ->
              output_string oc (Telemetry.Json.to_string j);
              output_char oc '\n';
              flush oc;
              match flight with
              | Some f ->
                  let now = Unix.gettimeofday () in
                  if now -. !last_dump >= 1. then begin
                    last_dump := now;
                    Telemetry.Flight.request_dump f ~reason:"slow_request"
                  end
              | None -> ());
          at_exit (fun () -> close_out_noerr oc);
          Printf.printf "slow log: %s (threshold %.1f ms)\n%!" slow_path ms);
      Server.enable_phases srv r
    end;
    (match flight with
    | Some f ->
        Server.set_flight srv f;
        Telemetry.Flight.install_sigusr1 f
    | None -> ());
    let http =
      Option.map
        (fun port ->
          let h = Metrics_http.attach srv ~port in
          Printf.printf "metrics: http://127.0.0.1:%d/metrics (also /observe)\n%!"
            (Metrics_http.port h);
          h)
        metrics_port
    in
    let poll () =
      match flight with
      | None -> ()
      | Some f -> (
          match Telemetry.Flight.poll f with
          | Some path -> Printf.printf "flight: dumped %s\n%!" path
          | None -> ())
    in
    let finish () =
      poll ();
      Option.iter Metrics_http.close http
    in
    (poll, finish)
  in
  (* Crash-exit flight dump: if serving dies on an exception, persist the
     ring before the process unwinds — the black box survives the crash. *)
  let guard f =
    try f ()
    with e ->
      let bt = Printexc.get_raw_backtrace () in
      (match flight with
      | Some fl -> ( try ignore (Telemetry.Flight.dump fl ~reason:"crash") with _ -> ())
      | None -> ());
      (* Drain what the async sink holds so the spans leading up to the
         crash reach the file; the at_exit hook's close is then a noop. *)
      (match trace_async with
      | Some a -> ( try Tracer.Async.close a with _ -> ())
      | None -> ());
      (match trace_chan with
      | Some oc -> ( try flush oc with Sys_error _ -> ())
      | None -> ());
      Printexc.raise_with_backtrace e bt
  in
  if shards = 1 && readers = 0 then begin
    (* The PR-5 single-engine path, byte-for-byte the same on-disk
       layout (<wal>, no shard suffix).  Group commit owns the fsync
       schedule: the engine logs every update under [Wal.Never] and only
       the batcher's [Durable.sync_wal] — one per batch, before any ack
       — makes them durable. *)
    let eng =
      Durable.open_ ~pool_capacity:buffer ~sync_policy:Wal.Never ~checkpoint_every
        ~store ~max_key ~telemetry:tracer ~path:wal ()
    in
    let srv = Server.create ~config ~telemetry:tracer ~engine:eng ~listen () in
    let stop _ = Server.request_shutdown srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    if Durable.replayed_on_open eng > 0 then
      Printf.printf "recovered %d logged updates\n" (Durable.replayed_on_open eng);
    let repl =
      if not replication then `None
      else
        match follower_of with
        | None ->
            let epoch = Replica.Epoch.load wal in
            let hub =
              Replica.Hub.create ~metrics:(Server.metrics srv) ~sync_replicas
                ~heartbeat_s:(heartbeat_ms /. 1000.) ~epoch ~path:wal eng
            in
            Replica.Hub.attach hub srv;
            Printf.printf "replication: leader, epoch %d, sync_replicas %d\n" epoch
              sync_replicas;
            `Hub hub
        | Some upstream ->
            let upstream = parse_upstream upstream in
            let fcfg =
              { (Replica.Follower.default_config upstream) with
                Replica.Follower.failover_s = failover_ms /. 1000.;
                heartbeat_s = heartbeat_ms /. 1000.;
                auto_promote = not no_auto_promote;
                sync_replicas }
            in
            let f = Replica.Follower.create ~config:fcfg ~path:wal ~server:srv eng in
            Format.printf "replication: follower of %a, epoch %d%s@."
              Replica.Follower.pp_upstream upstream (Replica.Follower.epoch f)
              (if no_auto_promote then "" else ", auto-promote");
            `Follower f
    in
    let poll_flight, finish_observe = setup_observe srv in
    Printf.printf "serving %s on %s (batch<=%d, in-flight<=%d, queue<=%d)\n%!" wal where
      max_batch max_in_flight max_queue_depth;
    guard (fun () ->
        if repl = `None && flight = None then Server.run srv
        else
          (* Replication needs finer ticks than [run]'s 1 s select
             timeout (heartbeats, failure detection, reconnect pacing);
             the flight recorder needs them to honor SIGUSR1 promptly. *)
          let timeout = if repl = `None then 0.25 else 0.05 in
          while Server.step srv ~timeout do
            poll_flight ()
          done);
    finish_observe ();
    let s = Server.stats srv in
    Printf.printf "drained: %d requests, %d group commits covering %d writes, %d shed\n"
      s.Wire.requests s.Wire.batches s.Wire.batched_writes s.Wire.shed;
    (match repl with
    | `Hub hub ->
        let r = Replica.Hub.stats hub in
        Printf.printf
          "replication: leader epoch %d, durable %d, commit %d, %d frames shipped, %d \
           stale acks\n"
          r.Wire.r_epoch r.Wire.r_durable r.Wire.r_commit r.Wire.r_frames_shipped
          (Replica.Hub.stale_acks hub)
    | `Follower f ->
        let r = Replica.Follower.stats f in
        Format.printf
          "replication: %a epoch %d, watermark %d, %d frames replayed, %d promotions@."
          Wire.pp_role r.Wire.r_role r.Wire.r_epoch r.Wire.r_durable
          r.Wire.r_frames_replayed r.Wire.r_promotions
    | `None -> ());
    Format.printf "final health: %a@." Durable.pp_health (Durable.health eng);
    Durable.close eng
  end
  else begin
    (* Sharded: one writer domain per key range under <wal>.s<i>, each
       running its own group commit; reader domains serve snapshot
       queries when requested. *)
    let ccfg =
      {
        Shard.Cluster.default_config with
        shards;
        readers;
        max_batch;
        sim_io_ns = int_of_float (sim_io_us *. 1000.);
      }
    in
    let cluster =
      Shard.Cluster.create ~config:ccfg ~pool_capacity:buffer ~checkpoint_every ~store
        ~max_key ~telemetry:tracer ~path:wal ()
    in
    let srv = Server.create_sharded ~config ~telemetry:tracer ~cluster ~listen () in
    let stop _ = Server.request_shutdown srv in
    Sys.set_signal Sys.sigterm (Sys.Signal_handle stop);
    Sys.set_signal Sys.sigint (Sys.Signal_handle stop);
    Array.iter
      (fun (i, (r : Durable.recovery_report)) ->
        if r.replayed > 0 then
          Printf.printf "shard %d: recovered %d logged updates\n" i r.replayed)
      (Shard.Cluster.recovery cluster);
    let poll_flight, finish_observe = setup_observe srv in
    Printf.printf
      "serving %s on %s (%d shards, %d readers, batch<=%d, in-flight<=%d, queue<=%d)\n%!"
      wal where shards readers max_batch max_in_flight max_queue_depth;
    guard (fun () ->
        if flight = None then Server.run srv
        else
          while Server.step srv ~timeout:0.25 do
            poll_flight ()
          done);
    finish_observe ();
    let s = Server.stats srv in
    Printf.printf "drained: %d requests, %d group commits covering %d writes, %d shed\n"
      s.Wire.requests s.Wire.batches s.Wire.batched_writes s.Wire.shed;
    List.iter
      (fun (ss : Wire.shard_stat) ->
        Format.printf
          "  shard %d [%d,%d): watermark %d (readers at %d), %d batches, %d acked, \
           health %a@."
          ss.Wire.shard ss.Wire.s_klo ss.Wire.s_khi ss.Wire.watermark
          ss.Wire.reader_watermark ss.Wire.s_batches ss.Wire.s_acked Durable.pp_health
          ss.Wire.s_health)
      (Server.shard_stats srv);
    Format.printf "final health: %a@." Durable.pp_health (Shard.Cluster.health cluster);
    Shard.Cluster.shutdown cluster
  end

let serve_cmd =
  let max_batch =
    let doc = "Writes per group commit (one WAL fsync each)." in
    Arg.(value & opt int 64 & info [ "max-batch" ] ~doc)
  in
  let max_in_flight =
    let doc = "Admission cap on admitted-but-unanswered requests." in
    Arg.(value & opt int 1024 & info [ "max-in-flight" ] ~doc)
  in
  let max_queue_depth =
    let doc = "Admission cap on writes queued for the next group commit." in
    Arg.(value & opt int 256 & info [ "max-queue-depth" ] ~doc)
  in
  let shards =
    let doc =
      "Key-range shards, each owned by a writer domain with its own WAL (<wal>.s<i>).  \
       1 with --readers 0 keeps the single-engine layout."
    in
    Arg.(value & opt int 1 & info [ "shards" ] ~doc)
  in
  let readers =
    let doc =
      "Reader domains serving queries from lock-free snapshot replicas (0 = queries run \
       on the writer domains)."
    in
    Arg.(value & opt int 0 & info [ "readers" ] ~doc)
  in
  let sim_io_us =
    let doc =
      "Simulated device latency in microseconds charged per logical page touch on the \
       query path (sharded mode only) — makes reader scaling observable on a \
       single-core host."
    in
    Arg.(value & opt float 0. & info [ "sim-io-us" ] ~doc)
  in
  let follower_of =
    let doc =
      "Run as a read-only follower of the leader at this endpoint (a Unix socket path, \
       or host:port / :port for TCP): subscribe to its WAL, replay, serve queries at \
       the replayed watermark, and promote on leader silence unless --no-auto-promote."
    in
    Arg.(value & opt (some string) None & info [ "follower-of" ] ~doc ~docv:"ENDPOINT")
  in
  let sync_replicas =
    let doc =
      "Defer client write acks until this many followers have replayed and fsynced the \
       batch (0 = ack on the leader's own fsync).  Any value, or --follower-of, enables \
       replication."
    in
    Arg.(value & opt int 0 & info [ "sync-replicas" ] ~doc)
  in
  let heartbeat_ms =
    let doc = "Leader heartbeat cadence in milliseconds." in
    Arg.(value & opt float 200. & info [ "heartbeat-ms" ] ~doc)
  in
  let failover_ms =
    let doc = "Leader-silence threshold in milliseconds before a follower reconnects." in
    Arg.(value & opt float 1000. & info [ "failover-ms" ] ~doc)
  in
  let no_auto_promote =
    let doc = "Never self-promote; wait for an explicit promote command." in
    Arg.(value & flag & info [ "no-auto-promote" ] ~doc)
  in
  let trace_out =
    let doc =
      "Stream every span (all domains, JSONL, one JSON document per line) to this \
       file.  Each line carries trace_id/span_id/pid/tid, so files from several \
       processes merge into one Chrome/Perfetto artifact with $(b,trace-merge)."
    in
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~doc ~docv:"PATH")
  in
  let slow_ms =
    let doc =
      "Slow-request threshold in milliseconds: a request whose wall time reaches it \
       has its full phase vector appended to the slow log and triggers a \
       flight-recorder dump."
    in
    Arg.(value & opt (some float) None & info [ "slow-ms" ] ~doc ~docv:"MS")
  in
  let slow_log =
    let doc = "Slow-request JSONL path (default <wal>.slow.jsonl)." in
    Arg.(value & opt (some string) None & info [ "slow-log" ] ~doc ~docv:"PATH")
  in
  let metrics_port =
    let doc =
      "Serve HTTP GET /metrics (Prometheus text) and /observe (JSON) on this \
       127.0.0.1 port from the same event loop (0 picks a free port, printed at \
       startup)."
    in
    Arg.(value & opt (some int) None & info [ "metrics-port" ] ~doc ~docv:"PORT")
  in
  let trace_verbose =
    let doc =
      "Also record debug-level micro-spans (per-page IO, per-record WAL \
       appends, per-key tree operations).  Multiplies span volume roughly 4x and \
       puts their recording cost on the request path; default records request-level \
       spans only."
    in
    Arg.(value & flag & info [ "trace-verbose" ] ~doc)
  in
  let trace_sample =
    let doc =
      "Head-sampling rate for untagged work: record 1-in-N span trees rooted in \
       requests that carry no trace id (tagged requests always record fully).  \
       1 records everything.  The default keeps tracing's cost on the request \
       path negligible while every explicitly traced request keeps its story."
    in
    Arg.(value & opt int 16 & info [ "trace-sample" ] ~doc ~docv:"N")
  in
  let no_flight =
    let doc =
      "Disable the flight recorder — the always-on in-memory span ring dumped to \
       JSONL on SIGUSR1, crash exits, and slow requests.  With no other \
       observability flag this leaves tracing a complete no-op."
    in
    Arg.(value & flag & info [ "no-flight" ] ~doc)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Serve the wire protocol over a durable warehouse: select event loop, group \
          commit, admission control, optional key-range shards on OCaml domains, \
          optional WAL-shipping replication (--sync-replicas / --follower-of), \
          distributed tracing and live observability (--trace-out / --slow-ms / \
          --metrics-port / SIGUSR1 flight dump); SIGTERM/SIGINT drain and exit 0")
    Term.(const serve_impl $ verbosity $ engine_max_key_term $ engine_buffer_term
          $ wal_req_term $ socket_term $ port_term $ max_batch $ max_in_flight
          $ max_queue_depth $ checkpoint_every_term $ store_term $ shards $ readers
          $ sim_io_us
          $ follower_of $ sync_replicas $ heartbeat_ms $ failover_ms $ no_auto_promote
          $ trace_out $ trace_verbose $ trace_sample $ slow_ms $ slow_log $ metrics_port
          $ no_flight)

let connect_with_retry ~socket ~port =
  let try_once () =
    match (socket, port) with
    | Some path, _ -> Client.connect_unix ~path ()
    | None, Some port -> Client.connect_tcp ~port ()
    | None, None -> need_endpoint "connect"
  in
  let rec go n =
    match try_once () with
    | cli -> cli
    | exception Unix.Unix_error ((Unix.ECONNREFUSED | Unix.ENOENT), _, _) when n < 50 ->
        (* The server may still be opening its engine; CI starts it in the
           background and relies on this grace window. *)
        Unix.sleepf 0.1;
        go (n + 1)
  in
  go 0

(* --- promote / replica-stats ------------------------------------------------------- *)

let promote_impl verbosity socket port =
  setup_logs verbosity;
  let cli = connect_with_retry ~socket ~port in
  let r = Client.promote cli in
  Client.close cli;
  match r with
  | Wire.Ack ->
      print_endline "promoted";
      ()
  | r ->
      Format.eprintf "promote: %a@." Wire.pp_response r;
      exit 1

let observe_impl verbosity socket port =
  setup_logs verbosity;
  let cli = connect_with_retry ~socket ~port in
  let r = Client.observe cli in
  Client.close cli;
  match r with
  | Some doc -> print_endline doc
  | None ->
      prerr_endline "observe: server did not answer (pre-observability build?)";
      exit 1

let observe_cmd =
  Cmd.v
    (Cmd.info "observe"
       ~doc:
         "Fetch a serving node's live observability document (JSON): health, \
          admission state, per-shard watermark lag and snapshot age, vacuum horizon \
          distance, disk pressure, per-follower replication lag, request phase \
          quantiles, flight-recorder state")
    Term.(const observe_impl $ verbosity $ socket_term $ port_term)

(* --- trace-merge ------------------------------------------------------------------- *)

let trace_merge_impl verbosity out require_correlated inputs =
  setup_logs verbosity;
  if inputs = [] then begin
    prerr_endline "trace-merge: pass at least one JSONL span file";
    exit 2
  end;
  let spans = ref [] and events = ref [] and threads = ref [] in
  List.iter
    (fun path ->
      let ic = open_in path in
      Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
      try
        while true do
          let line = input_line ic in
          if String.length line > 0 then
            match Telemetry.Json.of_string line with
            | Error e ->
                Printf.eprintf "trace-merge: %s: skipping bad line (%s)\n" path e
            | Ok j -> (
                match Tracer.span_of_json j with
                | Some s -> spans := s :: !spans
                | None -> (
                    match Tracer.event_of_json j with
                    | Some e -> events := e :: !events
                    | None -> (
                        (* Flight-dump headers and anything else ride
                           along silently; thread_name lines label rows. *)
                        match
                          ( Telemetry.Json.member "type" j,
                            Telemetry.Json.member "pid" j,
                            Telemetry.Json.member "tid" j,
                            Telemetry.Json.member "name" j )
                        with
                        | ( Some (Telemetry.Json.Str "thread_name"),
                            Some (Telemetry.Json.Int pid),
                            Some (Telemetry.Json.Int tid),
                            Some (Telemetry.Json.Str name) ) ->
                            threads := (pid, tid, name) :: !threads
                        | _ -> ())))
        done
      with End_of_file -> ())
    inputs;
  let spans = List.rev !spans and events = List.rev !events in
  (* Correlation census: how many trace ids have spans in more than one
     process — the cross-process stitching the plane exists to provide. *)
  let module M = Map.Make (Int64) in
  let by_trace =
    List.fold_left
      (fun m (s : Tracer.span) ->
        match s.Tracer.trace_id with
        | None -> m
        | Some id ->
            let pids = match M.find_opt id m with Some l -> l | None -> [] in
            M.add id (s.Tracer.pid :: pids) m)
      M.empty spans
  in
  let correlated =
    M.fold
      (fun _ pids acc ->
        if List.length (List.sort_uniq compare pids) > 1 then acc + 1 else acc)
      by_trace 0
  in
  let doc = Tracer.chrome_trace ~events ~threads:(List.rev !threads) spans in
  (match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
      output_string oc (Telemetry.Json.to_string doc)
  | None -> print_endline (Telemetry.Json.to_string doc));
  Printf.eprintf
    "trace-merge: %d spans, %d events from %d files; %d trace ids, %d cross-process\n"
    (List.length spans) (List.length events) (List.length inputs) (M.cardinal by_trace)
    correlated;
  if require_correlated && correlated = 0 then begin
    prerr_endline "trace-merge: no trace id spans more than one process";
    exit 1
  end

let trace_merge_cmd =
  let out =
    let doc = "Output file for the Chrome trace_event JSON (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc ~docv:"PATH")
  in
  let require_correlated =
    let doc =
      "Exit 1 unless at least one trace id has spans in two or more processes — the \
       CI assertion that distributed propagation actually happened."
    in
    Arg.(value & flag & info [ "require-correlated" ] ~doc)
  in
  let inputs =
    let doc = "JSONL span files (serve --trace-out output, flight-recorder dumps)." in
    Arg.(value & pos_all file [] & info [] ~doc ~docv:"FILE")
  in
  Cmd.v
    (Cmd.info "trace-merge"
       ~doc:
         "Merge per-process JSONL span files into one Chrome/Perfetto trace_event \
          artifact, labelling rows by pid/domain thread names and reporting how many \
          trace ids correlate across processes")
    Term.(const trace_merge_impl $ verbosity $ out $ require_correlated $ inputs)

let promote_cmd =
  Cmd.v
    (Cmd.info "promote"
       ~doc:
         "Tell a follower to promote itself now: bump the fencing epoch durably, open \
          the write path, and start serving its own WAL to subscribers")
    Term.(const promote_impl $ verbosity $ socket_term $ port_term)

let replica_stats_impl verbosity socket port stats_json =
  setup_logs verbosity;
  let cli = connect_with_retry ~socket ~port in
  let r = Client.replica_stats cli in
  Client.close cli;
  match r with
  | None ->
      prerr_endline "replica-stats: replication is not enabled on this server";
      exit 1
  | Some (s : Wire.replica_stats) ->
      if stats_json then
        print_json
          (Telemetry.Json.Obj
             [ ("role", Telemetry.Json.Str (Format.asprintf "%a" Wire.pp_role s.Wire.r_role));
               ("epoch", Telemetry.Json.Int s.Wire.r_epoch);
               ("durable", Telemetry.Json.Int s.Wire.r_durable);
               ("commit", Telemetry.Json.Int s.Wire.r_commit);
               ("leader_durable", Telemetry.Json.Int s.Wire.r_leader_durable);
               ("lag", Telemetry.Json.Int s.Wire.r_lag);
               ("frames_shipped", Telemetry.Json.Int s.Wire.r_frames_shipped);
               ("frames_replayed", Telemetry.Json.Int s.Wire.r_frames_replayed);
               ("failover_promotions", Telemetry.Json.Int s.Wire.r_promotions);
               ( "followers",
                 Telemetry.Json.List
                   (List.map
                      (fun (id, acked) ->
                        Telemetry.Json.Obj
                          [ ("conn", Telemetry.Json.Int id);
                            ("acked", Telemetry.Json.Int acked) ])
                      s.Wire.r_followers) ) ])
      else begin
        Format.printf
          "%a: epoch %d, durable %d, commit %d, leader durable %d, lag %d@." Wire.pp_role
          s.Wire.r_role s.Wire.r_epoch s.Wire.r_durable s.Wire.r_commit
          s.Wire.r_leader_durable s.Wire.r_lag;
        Format.printf "  %d frames shipped, %d replayed, %d promotions@."
          s.Wire.r_frames_shipped s.Wire.r_frames_replayed s.Wire.r_promotions;
        List.iter
          (fun (id, acked) -> Format.printf "  follower on conn %d acked %d@." id acked)
          s.Wire.r_followers
      end

let replica_stats_cmd =
  Cmd.v
    (Cmd.info "replica-stats"
       ~doc:
         "Report a node's replication state: role, fencing epoch, durable/commit \
          watermarks, lag, frame counters, failover promotions, per-follower acks")
    Term.(const replica_stats_impl $ verbosity $ socket_term $ port_term $ stats_json_term)

let server_stats_json (s : Wire.stats) =
  Telemetry.Json.Obj
    [ ("updates", Telemetry.Json.Int s.Wire.updates);
      ("alive", Telemetry.Json.Int s.Wire.alive);
      ("pages", Telemetry.Json.Int s.Wire.pages);
      ("now", Telemetry.Json.Int s.Wire.now);
      ("health", Telemetry.Json.Str (health_string s.Wire.health));
      ("queue_depth", Telemetry.Json.Int s.Wire.queue_depth);
      ("in_flight", Telemetry.Json.Int s.Wire.in_flight);
      ("conns", Telemetry.Json.Int s.Wire.conns);
      ("requests", Telemetry.Json.Int s.Wire.requests);
      ("shed", Telemetry.Json.Int s.Wire.shed);
      ("batches", Telemetry.Json.Int s.Wire.batches);
      ("batched_writes", Telemetry.Json.Int s.Wire.batched_writes);
      ("wal_syncs", Telemetry.Json.Int s.Wire.wal_syncs);
      ("horizon", Telemetry.Json.Int s.Wire.horizon);
      ("pages_reclaimed", Telemetry.Json.Int s.Wire.pages_reclaimed);
      ("vacuum_steps", Telemetry.Json.Int s.Wire.vacuum_steps) ]

let shard_stat_json (ss : Wire.shard_stat) =
  Telemetry.Json.Obj
    [ ("shard", Telemetry.Json.Int ss.Wire.shard);
      ("klo", Telemetry.Json.Int ss.Wire.s_klo);
      ("khi", Telemetry.Json.Int ss.Wire.s_khi);
      ("watermark", Telemetry.Json.Int ss.Wire.watermark);
      ("reader_watermark", Telemetry.Json.Int ss.Wire.reader_watermark);
      ("now", Telemetry.Json.Int ss.Wire.s_now);
      ("alive", Telemetry.Json.Int ss.Wire.s_alive);
      ("queue", Telemetry.Json.Int ss.Wire.s_queue);
      ("batches", Telemetry.Json.Int ss.Wire.s_batches);
      ("acked", Telemetry.Json.Int ss.Wire.s_acked);
      ("wal_syncs", Telemetry.Json.Int ss.Wire.s_wal_syncs);
      ("health", Telemetry.Json.Str (health_string ss.Wire.s_health));
      ("io_reads", Telemetry.Json.Int ss.Wire.s_io_reads);
      ("io_writes", Telemetry.Json.Int ss.Wire.s_io_writes);
      ("io_syncs", Telemetry.Json.Int ss.Wire.s_io_syncs) ]

(* Client-observed latency quantiles (seconds in, milliseconds out).
   Under a pipeline window this includes time queued behind the window —
   exactly what a pipelining client experiences. *)
let latency_json samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  let n = Array.length a in
  if n = 0 then None
  else
    let pct q = a.(min (n - 1) (int_of_float ((q *. float_of_int (n - 1)) +. 0.5))) in
    Some
      (Telemetry.Json.Obj
         [ ("count", Telemetry.Json.Int n);
           ("p50_ms", Telemetry.Json.Float (1e3 *. pct 0.5));
           ("p95_ms", Telemetry.Json.Float (1e3 *. pct 0.95));
           ("p99_ms", Telemetry.Json.Float (1e3 *. pct 0.99));
           ("max_ms", Telemetry.Json.Float (1e3 *. a.(n - 1))) ])

let netbench_impl verbosity spec input socket port window queries qrs do_shutdown smoke
    stats_json query_window want_shard_stats no_writes trace_requests =
  setup_logs verbosity;
  let tag () = if trace_requests then Some (Tracer.new_trace_id ()) else None in
  let spec, queries =
    if smoke then
      ( { spec with Workload.Generator.n_records = min spec.Workload.Generator.n_records 400 },
        min queries 20 )
    else (spec, queries)
  in
  if window < 1 then begin
    prerr_endline "netbench: --window must be >= 1";
    exit 2
  end;
  (* A trace file is replayed streaming (constant memory): the closed
     loop below only ever needs one event in hand. *)
  let iter_events f =
    match input with
    | Some path ->
        let ic = open_in path in
        Fun.protect ~finally:(fun () -> close_in ic) @@ fun () ->
        Workload.Trace.fold_channel ic ~init:() ~f:(fun () ev -> f ev)
    | None -> List.iter f (Workload.Generator.events spec)
  in
  let cli = connect_with_retry ~socket ~port in
  if not (Client.ping cli) then begin
    prerr_endline "netbench: server did not answer ping";
    exit 1
  end;
  (* Closed loop with a pipeline window: at most [window] requests
     outstanding, responses matched to requests by position. *)
  let sent = ref 0 and acked = ref 0 and rejected = ref 0 and failed = ref 0 in
  let outstanding = ref 0 in
  let send_times = Queue.create () in
  let write_lats = ref [] in
  let drain_one () =
    decr outstanding;
    let t_send = Queue.pop send_times in
    (match Client.recv cli with
    | Wire.Ack -> incr acked
    | Wire.Err { code = Wire.Invalid_request; _ } -> incr rejected
    | _ -> incr failed);
    write_lats := (Unix.gettimeofday () -. t_send) :: !write_lats
  in
  let t0 = Unix.gettimeofday () in
  if not no_writes then
  iter_events (fun (ev : Workload.Generator.event) ->
      let req =
        match ev with
        | Workload.Generator.Insert { key; value; at } -> Wire.Insert { key; value; at }
        | Workload.Generator.Delete { key; at } -> Wire.Delete { key; at }
      in
      while !outstanding >= window do
        drain_one ()
      done;
      Queue.add (Unix.gettimeofday ()) send_times;
      Client.send ?trace:(tag ()) cli req;
      incr sent;
      incr outstanding);
  while !outstanding > 0 do
    drain_one ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  (* Query phase, pipelined like the write phase: against a sharded
     server a window > 1 keeps several reader domains busy at once, so
     the reported q/s reflects reader-scaling. *)
  let rects = query_rects ~spec ~n:queries ~qrs in
  let qwindow = max 1 query_window in
  let query_ok = ref 0 in
  let q_outstanding = ref 0 in
  let query_lats = ref [] in
  let drain_query () =
    decr q_outstanding;
    let t_send = Queue.pop send_times in
    (match Client.recv cli with Wire.Agg _ -> incr query_ok | _ -> ());
    query_lats := (Unix.gettimeofday () -. t_send) :: !query_lats
  in
  let qt0 = Unix.gettimeofday () in
  List.iter
    (fun (r : Workload.Query_gen.rect) ->
      while !q_outstanding >= qwindow do
        drain_query ()
      done;
      Queue.add (Unix.gettimeofday ()) send_times;
      Client.send ?trace:(tag ()) cli
        (Wire.Query { agg = Wire.Sum; klo = r.klo; khi = r.khi; tlo = r.tlo; thi = r.thi });
      incr q_outstanding)
    rects;
  while !q_outstanding > 0 do
    drain_query ()
  done;
  let qwall = Unix.gettimeofday () -. qt0 in
  let qps = if qwall > 0. then float_of_int (List.length rects) /. qwall else 0. in
  let srv_stats = Client.stats cli in
  let srv_shards = if want_shard_stats then Client.shard_stats cli else None in
  (* Server-side phase breakdown (the request_phase_* histograms), via
     Observe — absent when the server runs without the phase recorder. *)
  let srv_phases =
    match Client.observe cli with
    | None -> None
    | Some doc -> (
        match Telemetry.Json.of_string doc with
        | Ok j -> (
            match Telemetry.Json.member "phases" j with
            | Some (Telemetry.Json.Obj _ as p) -> Some p
            | _ -> None)
        | Error _ -> None)
  in
  (if do_shutdown then
     match Client.shutdown cli with
     | Wire.Ack -> ()
     | r -> Format.eprintf "netbench: shutdown answered %a@." Wire.pp_response r);
  Client.close cli;
  let rps = if wall > 0. then float_of_int !sent /. wall else 0. in
  let health =
    match srv_stats with Some s -> s.Wire.health | None -> Durable.Healthy
  in
  if stats_json then
    print_json
      (Telemetry.Json.Obj
         ([ ("mode", Telemetry.Json.Str "netbench");
            ("sent", Telemetry.Json.Int !sent);
            ("acked", Telemetry.Json.Int !acked);
            ("rejected", Telemetry.Json.Int !rejected);
            ("failed", Telemetry.Json.Int !failed);
            ("window", Telemetry.Json.Int window);
            ("wall_s", Telemetry.Json.Float wall);
            ("req_per_s", Telemetry.Json.Float rps);
            ("queries_ok", Telemetry.Json.Int !query_ok);
            ("query_window", Telemetry.Json.Int qwindow);
            ("query_wall_s", Telemetry.Json.Float qwall);
            ("query_per_s", Telemetry.Json.Float qps);
            ("health", Telemetry.Json.Str (health_string health)) ]
         @ (match latency_json !write_lats with
           | Some j -> [ ("write_latency", j) ]
           | None -> [])
         @ (match latency_json !query_lats with
           | Some j -> [ ("query_latency", j) ]
           | None -> [])
         @ (match srv_phases with Some p -> [ ("phases", p) ] | None -> [])
         @ (match srv_stats with
           | Some s -> [ ("server", server_stats_json s) ]
           | None -> [])
         @
         match srv_shards with
         | Some shards ->
             (* Per-shard counters plus the whole-system merge, so a
                consumer gets both views from one report. *)
             [ ("shards", Telemetry.Json.List (List.map shard_stat_json shards));
               ( "io",
                 Telemetry.Json.Obj
                   [ ( "reads",
                       Telemetry.Json.Int
                         (List.fold_left (fun a s -> a + s.Wire.s_io_reads) 0 shards) );
                     ( "writes",
                       Telemetry.Json.Int
                         (List.fold_left (fun a s -> a + s.Wire.s_io_writes) 0 shards) );
                     ( "syncs",
                       Telemetry.Json.Int
                         (List.fold_left (fun a s -> a + s.Wire.s_io_syncs) 0 shards) )
                   ] ) ]
         | None -> []))
  else begin
    Printf.printf
      "netbench: %d writes in %.3f s = %.0f req/s (window %d); %d acked, %d rejected, %d \
       failed; %d/%d queries ok\n"
      !sent wall rps window !acked !rejected !failed !query_ok queries;
    Printf.printf "  queries: %.3f s = %.0f q/s (window %d)\n" qwall qps qwindow;
    (let show name lats =
       match latency_json lats with
       | Some (Telemetry.Json.Obj kvs) ->
           let f k =
             match List.assoc_opt k kvs with
             | Some (Telemetry.Json.Float v) -> v
             | _ -> 0.
           in
           Printf.printf "  %s latency: p50 %.2f ms, p95 %.2f ms, p99 %.2f ms\n" name
             (f "p50_ms") (f "p95_ms") (f "p99_ms")
       | _ -> ()
     in
     show "write" !write_lats;
     show "query" !query_lats);
    (match srv_stats with
    | Some s ->
        Format.printf
          "  server: %d requests, %d batches covering %d writes, %d wal syncs, %d shed, \
           health %a@."
          s.Wire.requests s.Wire.batches s.Wire.batched_writes s.Wire.wal_syncs s.Wire.shed
          Durable.pp_health s.Wire.health;
        Printf.printf "  retention: horizon %d, %d pages reclaimed over %d vacuum steps\n"
          s.Wire.horizon s.Wire.pages_reclaimed s.Wire.vacuum_steps
    | None -> ());
    match srv_shards with
    | Some shards ->
        List.iter
          (fun (ss : Wire.shard_stat) ->
            Format.printf
              "  shard %d [%d,%d): watermark %d (readers at %d), queue %d, %d batches, \
               %d acked, io %d/%d/%d r/w/s, health %a@."
              ss.Wire.shard ss.Wire.s_klo ss.Wire.s_khi ss.Wire.watermark
              ss.Wire.reader_watermark ss.Wire.s_queue ss.Wire.s_batches ss.Wire.s_acked
              ss.Wire.s_io_reads ss.Wire.s_io_writes ss.Wire.s_io_syncs Durable.pp_health
              ss.Wire.s_health)
          shards;
        Printf.printf "  io total: %d reads, %d writes, %d syncs across %d shards\n"
          (List.fold_left (fun a (s : Wire.shard_stat) -> a + s.Wire.s_io_reads) 0 shards)
          (List.fold_left (fun a (s : Wire.shard_stat) -> a + s.Wire.s_io_writes) 0 shards)
          (List.fold_left (fun a (s : Wire.shard_stat) -> a + s.Wire.s_io_syncs) 0 shards)
          (List.length shards)
    | None -> ()
  end;
  if !failed > 0 then exit 1

let netbench_cmd =
  let window =
    let doc = "Pipeline window: maximum requests outstanding on the connection." in
    Arg.(value & opt int 64 & info [ "window" ] ~doc)
  in
  let queries =
    let doc = "Random RTA queries to run over the socket after the write phase." in
    Arg.(value & opt int 20 & info [ "queries" ] ~doc)
  in
  let qrs =
    let doc = "Query rectangle size as an area fraction." in
    Arg.(value & opt float 0.01 & info [ "qrs" ] ~doc)
  in
  let do_shutdown =
    let doc = "Send a wire Shutdown at the end so the server drains and exits." in
    Arg.(value & flag & info [ "shutdown" ] ~doc)
  in
  let smoke =
    let doc = "Bounded CI run: caps the workload at 400 events and 20 queries." in
    Arg.(value & flag & info [ "smoke" ] ~doc)
  in
  let query_window =
    let doc =
      "Pipeline window for the query phase (1 = sequential).  Against a sharded server \
       a larger window keeps several reader domains busy at once."
    in
    Arg.(value & opt int 1 & info [ "query-window" ] ~doc)
  in
  let shard_stats =
    let doc = "Fetch and report per-shard stats (watermarks, queues, per-shard I/O)." in
    Arg.(value & flag & info [ "shard-stats" ] ~doc)
  in
  let no_writes =
    let doc =
      "Skip the write phase and go straight to queries — the read-only load shape for \
       benchmarking followers, whose write path is closed."
    in
    Arg.(value & flag & info [ "no-writes" ] ~doc)
  in
  let trace_requests =
    let doc =
      "Stamp every request with a fresh trace id (v2 frames), so a traced server \
       attributes each span and phase sample to the request that caused it."
    in
    Arg.(value & flag & info [ "trace-requests" ] ~doc)
  in
  Cmd.v
    (Cmd.info "netbench"
       ~doc:
         "Closed-loop load generator for a running serve instance: replay a workload as \
          pipelined wire writes, then pipelined queries, and report req/s, q/s, and \
          client-observed latency quantiles plus the server's per-phase breakdown \
          (exits 1 on any failed write)")
    Term.(const netbench_impl $ verbosity $ spec_term $ input_term $ socket_term
          $ port_term $ window $ queries $ qrs $ do_shutdown $ smoke $ stats_json_term
          $ query_window $ shard_stats $ no_writes $ trace_requests)

(* --- dot ------------------------------------------------------------------------- *)

let dot verbosity spec (config, buffer) input out =
  setup_logs verbosity;
  let rta, _, _ = build_rta ~spec ~config ~buffer ~input in
  let write ppf = Format.fprintf ppf "%a@." Rta.pp_dot rta in
  match out with
  | Some path ->
      let oc = open_out path in
      Fun.protect ~finally:(fun () -> close_out oc) @@ fun () ->
      write (Format.formatter_of_out_channel oc)
  | None -> write Format.std_formatter

let dot_cmd =
  let out =
    let doc = "Output file for the Graphviz rendering (defaults to stdout)." in
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~doc)
  in
  Cmd.v
    (Cmd.info "dot" ~doc:"Render the MVSBT page graphs as Graphviz (small workloads only)")
    Term.(const dot $ verbosity $ spec_term $ mvsbt_config_term $ input_term $ out)

let () =
  let info =
    Cmd.info "mvsbt-rta" ~version:"1.0.0"
      ~doc:"Range-temporal aggregates with the Multiversion SB-tree (PODS 2001)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [ generate_cmd; build_cmd; query_cmd; compare_cmd; checkpoint_cmd; recover_cmd;
            vacuum_cmd; scrub_cmd; crash_matrix_cmd; vacuum_matrix_cmd; errsweep_cmd;
            replica_matrix_cmd; trace_cmd; metrics_cmd; profile_cmd; serve_cmd;
            netbench_cmd; observe_cmd; trace_merge_cmd; promote_cmd; replica_stats_cmd;
            dot_cmd ]))
